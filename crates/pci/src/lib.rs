//! Transaction-level PCI bus model.
//!
//! The paper's card "sits on a PCI card which can be fitted to a
//! standard desktop computer" and is "operated by issuing instructions
//! to the microcontroller through the PCI". This crate models the
//! 33 MHz / 32-bit PCI 2.2 bus at transaction level: every host↔card
//! transfer is broken into burst transactions with arbitration,
//! address-phase, wait-state and turnaround cycles, and the bus keeps
//! running totals so experiments can report effective bandwidth
//! (experiment E7).
//!
//! # Examples
//!
//! ```
//! use aaod_pci::{PciBus, PciConfig};
//!
//! let mut bus = PciBus::new(PciConfig::default());
//! let t = bus.write(4096); // host -> card, 4 KiB
//! assert!(t.as_us() > 0.0);
//! assert_eq!(bus.stats().bytes_written, 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aaod_sim::{Clock, SimTime};

/// Direction of a PCI transfer, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host writes to the card.
    Write,
    /// Host reads from the card.
    Read,
}

/// Static bus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PciConfig {
    /// Bus clock (33 MHz for PCI 2.2).
    pub clock: Clock,
    /// Data bus width in bytes (4 for 32-bit PCI).
    pub width_bytes: u64,
    /// Maximum data phases per burst before the transaction is split
    /// (models the latency timer / target disconnect).
    pub max_burst_words: u64,
    /// Cycles of arbitration before each transaction.
    pub arbitration_cycles: u64,
    /// Address-phase cycles per transaction.
    pub address_cycles: u64,
    /// Target initial-latency (wait-state) cycles per transaction;
    /// reads pay an extra turnaround cycle on top.
    pub wait_cycles: u64,
    /// Idle turnaround cycles after each transaction.
    pub turnaround_cycles: u64,
}

impl Default for PciConfig {
    /// 64-bit / 66 MHz PCI, as supported by the Altera Stratix PCI
    /// development board the paper's proof-of-concept uses.
    fn default() -> Self {
        PciConfig {
            clock: Clock::from_mhz(66),
            width_bytes: 8,
            max_burst_words: 64,
            arbitration_cycles: 2,
            address_cycles: 1,
            wait_cycles: 3,
            turnaround_cycles: 1,
        }
    }
}

impl PciConfig {
    /// Legacy 32-bit / 33 MHz PCI 2.2 (desktop slots of the era); the
    /// comparison point for experiment E7.
    pub fn pci33_32() -> Self {
        PciConfig {
            clock: aaod_sim::clock::domains::pci(),
            width_bytes: 4,
            ..PciConfig::default()
        }
    }

    /// Theoretical peak bandwidth in bytes/second (width × clock).
    pub fn peak_bandwidth(&self) -> f64 {
        self.width_bytes as f64 * self.clock.freq_hz() as f64
    }
}

/// Running totals of bus activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PciStats {
    /// Bytes moved host → card.
    pub bytes_written: u64,
    /// Bytes moved card → host.
    pub bytes_read: u64,
    /// Transactions issued (after burst splitting).
    pub transactions: u64,
    /// Total bus-busy cycles.
    pub busy_cycles: u64,
    /// Transfers aborted by an injected transient fault.
    pub faulted_transfers: u64,
    /// Transfers degraded by an injected slow-bus fault (they
    /// completed, at a multiple of the nominal cost).
    pub slowed_transfers: u64,
    /// Bus cycles burned by aborted transfers and by the slowdown
    /// overhead of degraded transfers (subset of `busy_cycles`).
    pub wasted_cycles: u64,
}

impl PciStats {
    /// Field-wise counter deltas since an `earlier` snapshot.
    ///
    /// The observability layer brackets a transfer with two snapshots
    /// and turns the delta into one PCI-burst trace event, so the bus
    /// model itself needs no tracing state.
    ///
    /// # Panics
    ///
    /// Panics if any counter in `earlier` exceeds the corresponding
    /// counter in `self` (i.e. `earlier` is not actually earlier).
    pub fn delta(&self, earlier: &PciStats) -> PciStats {
        PciStats {
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_read: self.bytes_read - earlier.bytes_read,
            transactions: self.transactions - earlier.transactions,
            busy_cycles: self.busy_cycles - earlier.busy_cycles,
            faulted_transfers: self.faulted_transfers - earlier.faulted_transfers,
            slowed_transfers: self.slowed_transfers - earlier.slowed_transfers,
            wasted_cycles: self.wasted_cycles - earlier.wasted_cycles,
        }
    }
}

/// A PCI transfer failure.
///
/// The model only produces transient aborts (master/target abort or a
/// parity error forcing a retry); the aborted transaction still burned
/// bus time, which the error carries so callers can charge it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PciError {
    /// The transfer aborted mid-flight and must be retried.
    TransientAbort {
        /// Bus time consumed by the aborted attempt.
        wasted: SimTime,
    },
}

impl std::fmt::Display for PciError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PciError::TransientAbort { wasted } => {
                write!(f, "transient PCI abort ({wasted} wasted)")
            }
        }
    }
}

impl std::error::Error for PciError {}

/// The bus itself: converts transfer sizes into time and keeps stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PciBus {
    config: PciConfig,
    stats: PciStats,
    armed_faults: u32,
    armed_slow: u32,
    slow_factor: u32,
}

impl PciBus {
    /// Creates a bus with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the width or burst limit is zero.
    pub fn new(config: PciConfig) -> Self {
        assert!(config.width_bytes > 0, "bus width must be non-zero");
        assert!(config.max_burst_words > 0, "burst limit must be non-zero");
        PciBus {
            config,
            stats: PciStats::default(),
            armed_faults: 0,
            armed_slow: 0,
            slow_factor: 1,
        }
    }

    /// The bus parameters.
    pub fn config(&self) -> PciConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PciStats {
        self.stats
    }

    /// Cycles one transaction of `words` data phases takes.
    fn transaction_cycles(&self, words: u64, dir: Direction) -> u64 {
        let read_turnaround = match dir {
            Direction::Read => 1,
            Direction::Write => 0,
        };
        self.config.arbitration_cycles
            + self.config.address_cycles
            + self.config.wait_cycles
            + read_turnaround
            + words
            + self.config.turnaround_cycles
    }

    /// Transfers `bytes` in `dir`, splitting into bursts, and returns
    /// the bus time consumed. Zero-byte transfers take zero time.
    pub fn transfer(&mut self, bytes: u64, dir: Direction) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let words = bytes.div_ceil(self.config.width_bytes);
        let full = words / self.config.max_burst_words;
        let tail = words % self.config.max_burst_words;
        let mut cycles = full * self.transaction_cycles(self.config.max_burst_words, dir);
        let mut transactions = full;
        if tail > 0 {
            cycles += self.transaction_cycles(tail, dir);
            transactions += 1;
        }
        self.stats.transactions += transactions;
        self.stats.busy_cycles += cycles;
        match dir {
            Direction::Write => self.stats.bytes_written += bytes,
            Direction::Read => self.stats.bytes_read += bytes,
        }
        self.config.clock.cycles(cycles)
    }

    /// Host-to-card transfer.
    pub fn write(&mut self, bytes: u64) -> SimTime {
        self.transfer(bytes, Direction::Write)
    }

    /// Card-to-host transfer.
    pub fn read(&mut self, bytes: u64) -> SimTime {
        self.transfer(bytes, Direction::Read)
    }

    /// Arms `n` one-shot transient faults. Each subsequent *fallible*
    /// transfer ([`PciBus::try_write`] / [`PciBus::try_read`]) consumes
    /// one armed fault and aborts; the infallible paths never consume
    /// them, so legacy callers are unaffected.
    pub fn arm_transient_faults(&mut self, n: u32) {
        self.armed_faults += n;
    }

    /// Armed faults not yet consumed.
    pub fn armed_faults(&self) -> u32 {
        self.armed_faults
    }

    /// Arms `n` one-shot slow transfers at `factor`× the nominal
    /// cost: each subsequent *fallible* transfer consumes one and
    /// completes, but occupies the bus `factor` times as long (a
    /// degraded link renegotiating, or a congested switch). The
    /// overhead beyond nominal is counted in `wasted_cycles`. Like
    /// armed transient faults, the infallible paths never consume
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn arm_slow_transfers(&mut self, n: u32, factor: u32) {
        assert!(factor >= 1, "slow factor must be at least 1");
        self.armed_slow += n;
        self.slow_factor = factor;
    }

    /// Armed slow transfers not yet consumed.
    pub fn armed_slow(&self) -> u32 {
        self.armed_slow
    }

    /// Disarms any remaining slow transfers, returning how many were
    /// still pending.
    pub fn disarm_slow(&mut self) -> u32 {
        std::mem::take(&mut self.armed_slow)
    }

    /// Fallible transfer: consumes an armed fault if one is pending.
    ///
    /// An aborted attempt still occupies the bus for the full transfer
    /// (worst-case retry timer), counted in `busy_cycles` and
    /// `faulted_transfers`, but delivers no bytes. An armed *slow*
    /// transfer completes at `factor`× cost; a transient abort takes
    /// precedence when both are armed.
    pub fn try_transfer(&mut self, bytes: u64, dir: Direction) -> Result<SimTime, PciError> {
        if self.armed_faults == 0 {
            if self.armed_slow > 0 && bytes > 0 {
                self.armed_slow -= 1;
                let before = self.stats.busy_cycles;
                let t = self.transfer(bytes, dir);
                let base_cycles = self.stats.busy_cycles - before;
                let extra_cycles = base_cycles * (self.slow_factor as u64 - 1);
                self.stats.busy_cycles += extra_cycles;
                self.stats.wasted_cycles += extra_cycles;
                self.stats.slowed_transfers += 1;
                return Ok(t * self.slow_factor as u64);
            }
            return Ok(self.transfer(bytes, dir));
        }
        self.armed_faults -= 1;
        let before = self.stats;
        let wasted = self.transfer(bytes, dir);
        // The attempt burned bus time but delivered nothing.
        self.stats.bytes_written = before.bytes_written;
        self.stats.bytes_read = before.bytes_read;
        self.stats.faulted_transfers += 1;
        self.stats.wasted_cycles += self.stats.busy_cycles - before.busy_cycles;
        Err(PciError::TransientAbort { wasted })
    }

    /// Fallible host-to-card transfer; see [`PciBus::try_transfer`].
    pub fn try_write(&mut self, bytes: u64) -> Result<SimTime, PciError> {
        self.try_transfer(bytes, Direction::Write)
    }

    /// Fallible card-to-host transfer; see [`PciBus::try_transfer`].
    pub fn try_read(&mut self, bytes: u64) -> Result<SimTime, PciError> {
        self.try_transfer(bytes, Direction::Read)
    }

    /// Effective bandwidth (bytes/s) a transfer of `bytes` achieves
    /// under the current parameters, without touching the stats.
    pub fn effective_bandwidth(&self, bytes: u64, dir: Direction) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let mut probe = PciBus::new(self.config);
        let t = probe.transfer(bytes, dir);
        bytes as f64 / t.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_write_cost() {
        let mut bus = PciBus::new(PciConfig::default());
        let t = bus.write(4);
        // 2 arb + 1 addr + 3 wait + 1 data + 1 turnaround = 8 cycles
        assert_eq!(t, PciConfig::default().clock.cycles(8));
        assert_eq!(bus.stats().transactions, 1);
    }

    #[test]
    fn reads_cost_one_extra_cycle() {
        let mut bus = PciBus::new(PciConfig::default());
        let w = bus.write(4);
        let r = bus.read(4);
        let period = PciConfig::default().clock.period();
        assert_eq!(r, w + period);
    }

    #[test]
    fn burst_splitting() {
        let cfg = PciConfig {
            max_burst_words: 16,
            ..PciConfig::default()
        };
        let mut bus = PciBus::new(cfg);
        let w = cfg.width_bytes;
        bus.write(16 * w * 3 + w); // 3 full bursts + 1 word
        assert_eq!(bus.stats().transactions, 4);
    }

    #[test]
    fn larger_bursts_are_more_efficient() {
        let small = PciConfig {
            max_burst_words: 4,
            ..PciConfig::default()
        };
        let large = PciConfig {
            max_burst_words: 256,
            ..PciConfig::default()
        };
        let bytes = 64 * 1024;
        let bw_small = PciBus::new(small).effective_bandwidth(bytes, Direction::Write);
        let bw_large = PciBus::new(large).effective_bandwidth(bytes, Direction::Write);
        assert!(bw_large > bw_small * 1.5, "{bw_large} vs {bw_small}");
        assert!(bw_large < small.peak_bandwidth());
    }

    #[test]
    fn zero_transfer_is_free() {
        let mut bus = PciBus::new(PciConfig::default());
        assert_eq!(bus.write(0), SimTime::ZERO);
        assert_eq!(bus.stats().transactions, 0);
    }

    #[test]
    fn partial_word_rounds_up() {
        let mut bus = PciBus::new(PciConfig::default());
        let t3 = bus.write(3);
        let mut bus2 = PciBus::new(PciConfig::default());
        let t4 = bus2.write(4);
        assert_eq!(t3, t4);
    }

    #[test]
    fn stats_accumulate() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.write(100);
        bus.read(200);
        let s = bus.stats();
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 200);
        assert!(s.busy_cycles > 0);
    }

    #[test]
    fn stats_delta_isolates_one_transfer() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.write(100);
        let before = bus.stats();
        bus.read(64);
        let d = bus.stats().delta(&before);
        assert_eq!(d.bytes_written, 0);
        assert_eq!(d.bytes_read, 64);
        assert!(d.transactions > 0);
        assert!(d.busy_cycles > 0);
        assert_eq!(d.faulted_transfers, 0);
        // A snapshot's delta against itself is all zeros.
        let s = bus.stats();
        assert_eq!(s.delta(&s), PciStats::default());
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let bus = PciBus::new(PciConfig::default());
        let bw = bus.effective_bandwidth(1 << 20, Direction::Write);
        let peak = PciConfig::default().peak_bandwidth();
        assert!(bw < peak);
        assert!(bw > peak * 0.5, "bandwidth collapsed: {bw}");
    }

    #[test]
    fn armed_fault_aborts_exactly_one_fallible_transfer() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.arm_transient_faults(1);
        let err = bus.try_write(4096).unwrap_err();
        let PciError::TransientAbort { wasted } = err;
        assert!(wasted > SimTime::ZERO);
        assert_eq!(bus.stats().bytes_written, 0, "aborted transfer delivered");
        assert_eq!(bus.stats().faulted_transfers, 1);
        assert_eq!(bus.armed_faults(), 0);
        // the retry succeeds
        let t = bus.try_write(4096).unwrap();
        assert!(t > SimTime::ZERO);
        assert_eq!(bus.stats().bytes_written, 4096);
    }

    #[test]
    fn infallible_transfers_never_consume_armed_faults() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.arm_transient_faults(1);
        bus.write(128);
        bus.read(128);
        assert_eq!(bus.armed_faults(), 1);
        assert_eq!(bus.stats().faulted_transfers, 0);
        assert_eq!(bus.stats().bytes_written, 128);
    }

    #[test]
    fn aborted_attempt_still_burns_bus_time() {
        let mut clean = PciBus::new(PciConfig::default());
        let clean_t = clean.try_write(2048).unwrap();
        let mut faulty = PciBus::new(PciConfig::default());
        faulty.arm_transient_faults(1);
        let PciError::TransientAbort { wasted } = faulty.try_write(2048).unwrap_err();
        assert_eq!(wasted, clean_t);
        assert_eq!(faulty.stats().busy_cycles, clean.stats().busy_cycles);
    }

    #[test]
    fn slow_transfer_costs_factor_times_nominal() {
        let mut clean = PciBus::new(PciConfig::default());
        let clean_t = clean.try_write(2048).unwrap();
        let mut slow = PciBus::new(PciConfig::default());
        slow.arm_slow_transfers(1, 8);
        let t = slow.try_write(2048).unwrap();
        assert_eq!(t, clean_t * 8);
        assert_eq!(slow.armed_slow(), 0);
        let s = slow.stats();
        assert_eq!(s.slowed_transfers, 1);
        assert_eq!(s.bytes_written, 2048, "slow transfer still delivers");
        assert_eq!(s.busy_cycles, clean.stats().busy_cycles * 8);
        assert_eq!(s.wasted_cycles, clean.stats().busy_cycles * 7);
        // the next transfer is back to nominal
        let t2 = slow.try_write(2048).unwrap();
        assert_eq!(t2, clean_t);
    }

    #[test]
    fn infallible_transfers_never_consume_armed_slow() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.arm_slow_transfers(2, 4);
        bus.write(128);
        bus.read(128);
        assert_eq!(bus.armed_slow(), 2);
        assert_eq!(bus.stats().slowed_transfers, 0);
        assert_eq!(bus.disarm_slow(), 2);
        assert_eq!(bus.armed_slow(), 0);
    }

    #[test]
    fn transient_abort_takes_precedence_over_slow() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.arm_transient_faults(1);
        bus.arm_slow_transfers(1, 4);
        assert!(bus.try_write(256).is_err());
        assert_eq!(bus.armed_slow(), 1, "abort consumed the slow arm");
        let mut clean = PciBus::new(PciConfig::default());
        let clean_t = clean.try_write(256).unwrap();
        // the retry then hits the slow arm
        assert_eq!(bus.try_write(256).unwrap(), clean_t * 4);
    }

    #[test]
    fn factor_one_slow_transfer_is_nominal() {
        let mut clean = PciBus::new(PciConfig::default());
        let clean_t = clean.try_write(512).unwrap();
        let mut bus = PciBus::new(PciConfig::default());
        bus.arm_slow_transfers(1, 1);
        assert_eq!(bus.try_write(512).unwrap(), clean_t);
        assert_eq!(bus.stats().wasted_cycles, 0);
        assert_eq!(bus.stats().slowed_transfers, 1);
    }

    #[test]
    #[should_panic(expected = "slow factor must be at least 1")]
    fn zero_slow_factor_panics() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.arm_slow_transfers(1, 0);
    }

    #[test]
    #[should_panic(expected = "width must be non-zero")]
    fn zero_width_panics() {
        let cfg = PciConfig {
            width_bytes: 0,
            ..PciConfig::default()
        };
        let _ = PciBus::new(cfg);
    }
}

//! Transaction-level PCI bus model.
//!
//! The paper's card "sits on a PCI card which can be fitted to a
//! standard desktop computer" and is "operated by issuing instructions
//! to the microcontroller through the PCI". This crate models the
//! 33 MHz / 32-bit PCI 2.2 bus at transaction level: every host↔card
//! transfer is broken into burst transactions with arbitration,
//! address-phase, wait-state and turnaround cycles, and the bus keeps
//! running totals so experiments can report effective bandwidth
//! (experiment E7).
//!
//! # Examples
//!
//! ```
//! use aaod_pci::{PciBus, PciConfig};
//!
//! let mut bus = PciBus::new(PciConfig::default());
//! let t = bus.write(4096); // host -> card, 4 KiB
//! assert!(t.as_us() > 0.0);
//! assert_eq!(bus.stats().bytes_written, 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aaod_sim::{Clock, SimTime};

/// Direction of a PCI transfer, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host writes to the card.
    Write,
    /// Host reads from the card.
    Read,
}

/// Static bus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PciConfig {
    /// Bus clock (33 MHz for PCI 2.2).
    pub clock: Clock,
    /// Data bus width in bytes (4 for 32-bit PCI).
    pub width_bytes: u64,
    /// Maximum data phases per burst before the transaction is split
    /// (models the latency timer / target disconnect).
    pub max_burst_words: u64,
    /// Cycles of arbitration before each transaction.
    pub arbitration_cycles: u64,
    /// Address-phase cycles per transaction.
    pub address_cycles: u64,
    /// Target initial-latency (wait-state) cycles per transaction;
    /// reads pay an extra turnaround cycle on top.
    pub wait_cycles: u64,
    /// Idle turnaround cycles after each transaction.
    pub turnaround_cycles: u64,
}

impl Default for PciConfig {
    /// 64-bit / 66 MHz PCI, as supported by the Altera Stratix PCI
    /// development board the paper's proof-of-concept uses.
    fn default() -> Self {
        PciConfig {
            clock: Clock::from_mhz(66),
            width_bytes: 8,
            max_burst_words: 64,
            arbitration_cycles: 2,
            address_cycles: 1,
            wait_cycles: 3,
            turnaround_cycles: 1,
        }
    }
}

impl PciConfig {
    /// Legacy 32-bit / 33 MHz PCI 2.2 (desktop slots of the era); the
    /// comparison point for experiment E7.
    pub fn pci33_32() -> Self {
        PciConfig {
            clock: aaod_sim::clock::domains::pci(),
            width_bytes: 4,
            ..PciConfig::default()
        }
    }

    /// Theoretical peak bandwidth in bytes/second (width × clock).
    pub fn peak_bandwidth(&self) -> f64 {
        self.width_bytes as f64 * self.clock.freq_hz() as f64
    }
}

/// Running totals of bus activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PciStats {
    /// Bytes moved host → card.
    pub bytes_written: u64,
    /// Bytes moved card → host.
    pub bytes_read: u64,
    /// Transactions issued (after burst splitting).
    pub transactions: u64,
    /// Total bus-busy cycles.
    pub busy_cycles: u64,
}

/// The bus itself: converts transfer sizes into time and keeps stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PciBus {
    config: PciConfig,
    stats: PciStats,
}

impl PciBus {
    /// Creates a bus with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the width or burst limit is zero.
    pub fn new(config: PciConfig) -> Self {
        assert!(config.width_bytes > 0, "bus width must be non-zero");
        assert!(config.max_burst_words > 0, "burst limit must be non-zero");
        PciBus {
            config,
            stats: PciStats::default(),
        }
    }

    /// The bus parameters.
    pub fn config(&self) -> PciConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PciStats {
        self.stats
    }

    /// Cycles one transaction of `words` data phases takes.
    fn transaction_cycles(&self, words: u64, dir: Direction) -> u64 {
        let read_turnaround = match dir {
            Direction::Read => 1,
            Direction::Write => 0,
        };
        self.config.arbitration_cycles
            + self.config.address_cycles
            + self.config.wait_cycles
            + read_turnaround
            + words
            + self.config.turnaround_cycles
    }

    /// Transfers `bytes` in `dir`, splitting into bursts, and returns
    /// the bus time consumed. Zero-byte transfers take zero time.
    pub fn transfer(&mut self, bytes: u64, dir: Direction) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let words = bytes.div_ceil(self.config.width_bytes);
        let full = words / self.config.max_burst_words;
        let tail = words % self.config.max_burst_words;
        let mut cycles = full * self.transaction_cycles(self.config.max_burst_words, dir);
        let mut transactions = full;
        if tail > 0 {
            cycles += self.transaction_cycles(tail, dir);
            transactions += 1;
        }
        self.stats.transactions += transactions;
        self.stats.busy_cycles += cycles;
        match dir {
            Direction::Write => self.stats.bytes_written += bytes,
            Direction::Read => self.stats.bytes_read += bytes,
        }
        self.config.clock.cycles(cycles)
    }

    /// Host-to-card transfer.
    pub fn write(&mut self, bytes: u64) -> SimTime {
        self.transfer(bytes, Direction::Write)
    }

    /// Card-to-host transfer.
    pub fn read(&mut self, bytes: u64) -> SimTime {
        self.transfer(bytes, Direction::Read)
    }

    /// Effective bandwidth (bytes/s) a transfer of `bytes` achieves
    /// under the current parameters, without touching the stats.
    pub fn effective_bandwidth(&self, bytes: u64, dir: Direction) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let mut probe = PciBus::new(self.config);
        let t = probe.transfer(bytes, dir);
        bytes as f64 / t.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_write_cost() {
        let mut bus = PciBus::new(PciConfig::default());
        let t = bus.write(4);
        // 2 arb + 1 addr + 3 wait + 1 data + 1 turnaround = 8 cycles
        assert_eq!(t, PciConfig::default().clock.cycles(8));
        assert_eq!(bus.stats().transactions, 1);
    }

    #[test]
    fn reads_cost_one_extra_cycle() {
        let mut bus = PciBus::new(PciConfig::default());
        let w = bus.write(4);
        let r = bus.read(4);
        let period = PciConfig::default().clock.period();
        assert_eq!(r, w + period);
    }

    #[test]
    fn burst_splitting() {
        let cfg = PciConfig {
            max_burst_words: 16,
            ..PciConfig::default()
        };
        let mut bus = PciBus::new(cfg);
        let w = cfg.width_bytes;
        bus.write(16 * w * 3 + w); // 3 full bursts + 1 word
        assert_eq!(bus.stats().transactions, 4);
    }

    #[test]
    fn larger_bursts_are_more_efficient() {
        let small = PciConfig {
            max_burst_words: 4,
            ..PciConfig::default()
        };
        let large = PciConfig {
            max_burst_words: 256,
            ..PciConfig::default()
        };
        let bytes = 64 * 1024;
        let bw_small = PciBus::new(small).effective_bandwidth(bytes, Direction::Write);
        let bw_large = PciBus::new(large).effective_bandwidth(bytes, Direction::Write);
        assert!(bw_large > bw_small * 1.5, "{bw_large} vs {bw_small}");
        assert!(bw_large < small.peak_bandwidth());
    }

    #[test]
    fn zero_transfer_is_free() {
        let mut bus = PciBus::new(PciConfig::default());
        assert_eq!(bus.write(0), SimTime::ZERO);
        assert_eq!(bus.stats().transactions, 0);
    }

    #[test]
    fn partial_word_rounds_up() {
        let mut bus = PciBus::new(PciConfig::default());
        let t3 = bus.write(3);
        let mut bus2 = PciBus::new(PciConfig::default());
        let t4 = bus2.write(4);
        assert_eq!(t3, t4);
    }

    #[test]
    fn stats_accumulate() {
        let mut bus = PciBus::new(PciConfig::default());
        bus.write(100);
        bus.read(200);
        let s = bus.stats();
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_read, 200);
        assert!(s.busy_cycles > 0);
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let bus = PciBus::new(PciConfig::default());
        let bw = bus.effective_bandwidth(1 << 20, Direction::Write);
        let peak = PciConfig::default().peak_bandwidth();
        assert!(bw < peak);
        assert!(bw > peak * 0.5, "bandwidth collapsed: {bw}");
    }

    #[test]
    #[should_panic(expected = "width must be non-zero")]
    fn zero_width_panics() {
        let cfg = PciConfig {
            width_bytes: 0,
            ..PciConfig::default()
        };
        let _ = PciBus::new(cfg);
    }
}

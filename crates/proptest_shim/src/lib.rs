//! A dependency-free property-testing harness with a proptest-compatible
//! API surface.
//!
//! The repo's property suite (`tests/properties.rs`) was written against
//! a small slice of the real `proptest` crate: the `proptest!` macro with
//! an inline `ProptestConfig`, range and `any::<T>()` strategies,
//! `collection::vec`, and the `prop_assert!`/`prop_assert_eq!` macros.
//! crates.io is unreachable in hermetic/offline build environments, so
//! this crate implements that slice over a deterministic SplitMix64
//! generator. There is no shrinking: a failing case reports its seed,
//! case number and generated inputs instead.
//!
//! Determinism: the per-test RNG seed is derived from the test's name
//! (FNV-1a), so every run of a given test explores the same cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Deterministic SplitMix64 generator used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a test name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed property assertion, carried out of the test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// Tuples of strategies are themselves strategies, generated
// left to right — `(0u8..4, any::<u8>())` works as in real proptest.
macro_rules! tuple_strategy {
    ($($S:ident / $v:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S1 / s1, S2 / s2);
tuple_strategy!(S1 / s1, S2 / s2, S3 / s3);
tuple_strategy!(S1 / s1, S2 / s2, S3 / s3, S4 / s4);

/// Types with a full-domain uniform generator, for [`any`].
pub trait Arbitrary {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// Strategy producing any value of `T`; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )*
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)*),
                        $(&$arg,)*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
            let u = Strategy::generate(&(1usize..2), &mut rng);
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, v in collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest macro_fails")]
    fn macro_reports_failure() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]

            #[allow(unused)]
            fn macro_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        macro_fails();
    }
}

//! Clock domains.
//!
//! The co-processor card spans three clock domains: the PCI bus
//! (33 MHz), the microcontroller and configuration port (50 MHz), and
//! the fabric user clock (100 MHz). A [`Clock`] converts cycle counts of
//! one domain into [`SimTime`] so latencies from different domains can
//! be summed.

use crate::SimTime;
use std::fmt;

/// A clock domain defined by its frequency.
///
/// # Examples
///
/// ```
/// use aaod_sim::Clock;
///
/// let mcu = Clock::from_mhz(50);
/// assert_eq!(mcu.period().as_ps(), 20_000); // 20 ns
/// assert_eq!(mcu.cycles(5).as_ns(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    freq_hz: u64,
}

impl Clock {
    /// Creates a clock from a frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn from_hz(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be non-zero");
        Clock { freq_hz }
    }

    /// Creates a clock from a frequency in megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is zero.
    pub fn from_mhz(freq_mhz: u64) -> Self {
        Clock::from_hz(freq_mhz * 1_000_000)
    }

    /// The clock frequency in hertz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// The duration of a single cycle.
    pub fn period(&self) -> SimTime {
        self.cycles(1)
    }

    /// Converts a cycle count in this domain to simulated time.
    ///
    /// Rounds to the nearest picosecond, computing in u128 to avoid
    /// overflow for large cycle counts.
    pub fn cycles(&self, n: u64) -> SimTime {
        let ps =
            (n as u128 * 1_000_000_000_000u128 + self.freq_hz as u128 / 2) / self.freq_hz as u128;
        SimTime::from_ps(ps as u64)
    }

    /// Converts a simulated duration to the number of whole cycles of
    /// this clock that fit in it (rounding up, as hardware must wait for
    /// the edge).
    pub fn cycles_in(&self, t: SimTime) -> u64 {
        let num = t.as_ps() as u128 * self.freq_hz as u128;
        num.div_ceil(1_000_000_000_000u128) as u64
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.freq_hz.is_multiple_of(1_000_000) {
            write!(f, "{}MHz", self.freq_hz / 1_000_000)
        } else {
            write!(f, "{}Hz", self.freq_hz)
        }
    }
}

/// The standard clock domains of the modelled card.
pub mod domains {
    use super::Clock;

    /// 33 MHz PCI bus clock (PCI 2.2, 32-bit).
    pub fn pci() -> Clock {
        Clock::from_mhz(33)
    }

    /// 50 MHz microcontroller / configuration-port clock.
    pub fn mcu() -> Clock {
        Clock::from_mhz(50)
    }

    /// 100 MHz fabric user clock.
    pub fn fabric() -> Clock {
        Clock::from_mhz(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhz_period() {
        assert_eq!(Clock::from_mhz(100).period(), SimTime::from_ns(10));
        assert_eq!(Clock::from_mhz(50).period(), SimTime::from_ns(20));
    }

    #[test]
    fn pci_period_is_fractional_ns() {
        // 1/33MHz = 30.303..ns: picosecond resolution keeps it close.
        let p = domains::pci().period();
        assert_eq!(p.as_ps(), 30_303);
    }

    #[test]
    fn cycles_roundtrip() {
        let c = Clock::from_mhz(50);
        for n in [0u64, 1, 7, 1000, 123_456] {
            assert_eq!(c.cycles_in(c.cycles(n)), n);
        }
    }

    #[test]
    fn cycles_in_rounds_up() {
        let c = Clock::from_mhz(100); // 10ns period
        assert_eq!(c.cycles_in(SimTime::from_ns(25)), 3);
        assert_eq!(c.cycles_in(SimTime::from_ns(30)), 3);
        assert_eq!(c.cycles_in(SimTime::ZERO), 0);
    }

    #[test]
    fn large_cycle_counts_do_not_overflow() {
        let c = Clock::from_mhz(33);
        // A billion cycles ~ 30s; must not overflow the intermediate math.
        let t = c.cycles(1_000_000_000);
        assert!((t.as_secs() - 30.303).abs() < 0.001);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Clock::from_hz(0);
    }

    #[test]
    fn display() {
        assert_eq!(domains::pci().to_string(), "33MHz");
        assert_eq!(Clock::from_hz(1234).to_string(), "1234Hz");
    }
}

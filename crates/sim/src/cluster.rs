//! Deterministic card-level fault scheduling for cluster experiments.
//!
//! [`FaultPlan`](crate::FaultPlan) breaks *one* card from the inside
//! (frame flips, torn configs, stalls); a [`ClusterFaultPlan`] breaks
//! the *fleet* from the outside: whole cards crash, hang and come
//! back, or flap on a failing link, and individual cards run under
//! elevated SEU pressure that scales their per-card corruption plan.
//!
//! The same purity contract applies at fleet scope: the fault drawn
//! against card `c` is a pure function of `(seed, c)` — no mutable RNG
//! state is shared between cards — so a cluster run's health timeline
//! is reproducible from the seed regardless of evaluation order, and
//! two runs with the same seed kill the same cards at the same
//! modelled instants.
//!
//! # Examples
//!
//! ```
//! use aaod_sim::cluster::{CardFaultRates, ClusterFaultPlan};
//! use aaod_sim::SimTime;
//!
//! let horizon = SimTime::from_ms(10);
//! let plan = ClusterFaultPlan::new(42, CardFaultRates::ZERO, horizon)
//!     .with_kill(3, 0.5); // card 3 crashes mid-run
//! assert!(plan.timeline(3).is_up(SimTime::ZERO));
//! assert!(!plan.timeline(3).is_up(SimTime::from_ms(6)));
//! assert!(plan.timeline(0).is_up(SimTime::from_ms(6)));
//! ```

use crate::{SimTime, SplitMix64};

/// The card-level fault drawn against one card for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardFault {
    /// The card dies at `at` and never comes back.
    Crash {
        /// Modelled time of death.
        at: SimTime,
    },
    /// The card stops responding at `at` and recovers after `outage`.
    Hang {
        /// Modelled time the hang begins.
        at: SimTime,
        /// How long the card stays dark.
        outage: SimTime,
    },
    /// A flapping link: from `from`, the card alternates `downtime`
    /// dark then `period - downtime` up, every `period`.
    Flap {
        /// Modelled time the flapping starts.
        from: SimTime,
        /// Full flap cycle length.
        period: SimTime,
        /// Dark fraction of each cycle (must be below `period`).
        downtime: SimTime,
    },
}

impl CardFault {
    /// Short lowercase name for reports and trace events.
    pub fn name(self) -> &'static str {
        match self {
            CardFault::Crash { .. } => "crash",
            CardFault::Hang { .. } => "hang",
            CardFault::Flap { .. } => "flap",
        }
    }
}

/// Per-card fault probabilities plus the magnitude knobs applied when
/// a fault is drawn. Rates follow the [`FaultRates`](crate::FaultRates)
/// contract: independent probabilities whose sum must not exceed 1,
/// with at most one card-level fault drawn per card. The SEU-pressure
/// draw is independent, so a flapping card can also run hot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardFaultRates {
    /// Probability a card crashes during the run.
    pub crash: f64,
    /// Probability a card hangs and recovers.
    pub hang: f64,
    /// Probability a card's link flaps.
    pub flap: f64,
    /// Probability a card runs under elevated SEU pressure
    /// (independent draw; composes with the per-card corruption plan).
    pub seu_pressure: f64,
    /// Multiplier applied to a pressured card's SEU rate.
    pub seu_factor: f64,
    /// Outage length of a drawn hang.
    pub hang_outage: SimTime,
    /// Cycle length of a drawn flap.
    pub flap_period: SimTime,
    /// Dark fraction of each flap cycle.
    pub flap_downtime: SimTime,
}

impl Default for CardFaultRates {
    fn default() -> Self {
        CardFaultRates::ZERO
    }
}

impl CardFaultRates {
    /// No card-level faults; magnitudes at their defaults.
    pub const ZERO: CardFaultRates = CardFaultRates {
        crash: 0.0,
        hang: 0.0,
        flap: 0.0,
        seu_pressure: 0.0,
        seu_factor: 4.0,
        hang_outage: SimTime::from_ms(2),
        flap_period: SimTime::from_ms(1),
        flap_downtime: SimTime::from_us(400),
    };

    /// The same rate `p` for crash, hang and flap, default magnitudes
    /// and no SEU pressure.
    ///
    /// # Panics
    ///
    /// Panics if `3 * p` exceeds 1.
    pub fn uniform(p: f64) -> CardFaultRates {
        let r = CardFaultRates {
            crash: p,
            hang: p,
            flap: p,
            ..CardFaultRates::ZERO
        };
        r.validate();
        r
    }

    /// Sum of the card-fault rates — the per-card fault probability.
    pub fn total(&self) -> f64 {
        self.crash + self.hang + self.flap
    }

    pub(crate) fn validate(&self) {
        for (name, p) in [
            ("crash", self.crash),
            ("hang", self.hang),
            ("flap", self.flap),
            ("seu-pressure", self.seu_pressure),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "card rate for {name} out of [0,1]: {p}"
            );
        }
        assert!(
            self.total() <= 1.0,
            "card fault rates sum to {} > 1; at most one card fault per card",
            self.total()
        );
        assert!(self.seu_factor >= 1.0, "SEU factor must be at least 1");
        assert!(
            self.flap_downtime < self.flap_period || self.flap == 0.0,
            "flap downtime must be below the flap period"
        );
    }
}

/// One card's up/down schedule over the run horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardTimeline {
    fault: Option<CardFault>,
}

impl CardTimeline {
    /// A card that never goes down.
    pub const HEALTHY: CardTimeline = CardTimeline { fault: None };

    /// The fault behind this timeline, if any.
    pub fn fault(&self) -> Option<CardFault> {
        self.fault
    }

    /// Whether the card is reachable at modelled time `t`.
    pub fn is_up(&self, t: SimTime) -> bool {
        match self.fault {
            None => true,
            Some(CardFault::Crash { at }) => t < at,
            Some(CardFault::Hang { at, outage }) => t < at || t >= at + outage,
            Some(CardFault::Flap {
                from,
                period,
                downtime,
            }) => {
                if t < from {
                    return true;
                }
                let phase = (t - from).as_ps() % period.as_ps().max(1);
                phase >= downtime.as_ps()
            }
        }
    }

    /// The earliest time at or after `t` the card is up, or `None` if
    /// it never recovers (a crash).
    pub fn next_up(&self, t: SimTime) -> Option<SimTime> {
        match self.fault {
            None => Some(t),
            Some(CardFault::Crash { at }) => (t < at).then_some(t),
            Some(CardFault::Hang { at, outage }) => {
                if t < at || t >= at + outage {
                    Some(t)
                } else {
                    Some(at + outage)
                }
            }
            Some(CardFault::Flap {
                from,
                period,
                downtime,
            }) => {
                if self.is_up(t) {
                    return Some(t);
                }
                let phase = (t - from).as_ps() % period.as_ps().max(1);
                Some(t + SimTime::from_ps(downtime.as_ps() - phase))
            }
        }
    }

    /// The first down transition at or after `t`, or `None` if the
    /// card stays up forever from `t`.
    pub fn next_down(&self, t: SimTime) -> Option<SimTime> {
        match self.fault {
            None => None,
            Some(CardFault::Crash { at }) => Some(at.max(t)),
            Some(CardFault::Hang { at, outage }) => {
                if t < at {
                    Some(at)
                } else if t < at + outage {
                    Some(t)
                } else {
                    None
                }
            }
            Some(CardFault::Flap { from, period, .. }) => {
                if !self.is_up(t) {
                    return Some(t);
                }
                if t < from {
                    return Some(from);
                }
                let phase = (t - from).as_ps() % period.as_ps().max(1);
                Some(t + SimTime::from_ps(period.as_ps() - phase))
            }
        }
    }

    /// Every up/down edge inside `[0, horizon)`, in time order:
    /// `(time, up?)` pairs. The implicit initial state (up at time
    /// zero) is not emitted.
    pub fn transitions(&self, horizon: SimTime) -> Vec<(SimTime, bool)> {
        let mut edges = Vec::new();
        match self.fault {
            None => {}
            Some(CardFault::Crash { at }) if at < horizon => {
                edges.push((at, false));
            }
            Some(CardFault::Crash { .. }) => {}
            Some(CardFault::Hang { at, outage }) if at < horizon => {
                edges.push((at, false));
                if at + outage < horizon {
                    edges.push((at + outage, true));
                }
            }
            Some(CardFault::Hang { .. }) => {}
            Some(CardFault::Flap {
                from,
                period,
                downtime,
            }) => {
                let mut t = from;
                while t < horizon {
                    edges.push((t, false));
                    if t + downtime < horizon {
                        edges.push((t + downtime, true));
                    }
                    t += period;
                }
            }
        }
        edges
    }
}

/// Salt mixed into the SEU-pressure draw so it is independent of the
/// card-fault draw for the same card.
const SEU_SALT: u64 = 0x5EB5_ED0C_A2D5_01AF_u64;

/// A seeded, reproducible fleet-level fault schedule.
///
/// The plan holds no mutable state: [`ClusterFaultPlan::timeline`]
/// hashes the seed with the card index and draws once, partitioning
/// the unit interval between crash, hang and flap, then draws the
/// fault's placement inside the run horizon from the same per-card
/// stream. Explicit overrides ([`ClusterFaultPlan::with_kill`],
/// [`ClusterFaultPlan::with_fault`]) replace the drawn fault for one
/// card — the deterministic kill schedules the cluster bench sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFaultPlan {
    seed: u64,
    rates: CardFaultRates,
    horizon: SimTime,
    overrides: Vec<(usize, Option<CardFault>)>,
}

impl ClusterFaultPlan {
    /// Creates a plan from a seed, per-card rates and the modelled
    /// run horizon fault placements are drawn inside.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`, the card-fault rates
    /// sum past 1, the SEU factor is below 1, or the flap downtime is
    /// not below the flap period, or the horizon is zero.
    pub fn new(seed: u64, rates: CardFaultRates, horizon: SimTime) -> ClusterFaultPlan {
        rates.validate();
        assert!(!horizon.is_zero(), "cluster fault horizon must be non-zero");
        ClusterFaultPlan {
            seed,
            rates,
            horizon,
            overrides: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's per-card rates and magnitudes.
    pub fn rates(&self) -> CardFaultRates {
        self.rates
    }

    /// The run horizon fault placements are drawn inside.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Overrides card `card` with a crash at `at_frac` of the horizon
    /// (clamped to `[0, 1]`) — the deterministic kill schedule knob.
    #[must_use]
    pub fn with_kill(self, card: usize, at_frac: f64) -> ClusterFaultPlan {
        let frac = at_frac.clamp(0.0, 1.0);
        let at = SimTime::from_ps((self.horizon.as_ps() as f64 * frac) as u64);
        self.with_fault(card, Some(CardFault::Crash { at }))
    }

    /// Overrides card `card` with an explicit fault (or `None` to pin
    /// it healthy regardless of the drawn schedule).
    #[must_use]
    pub fn with_fault(mut self, card: usize, fault: Option<CardFault>) -> ClusterFaultPlan {
        self.overrides.retain(|&(c, _)| c != card);
        self.overrides.push((card, fault));
        self.overrides.sort_by_key(|&(c, _)| c);
        self
    }

    fn rng_for(&self, card: usize, salt: u64) -> SplitMix64 {
        let mut mixer =
            SplitMix64::new(self.seed ^ salt ^ (card as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        SplitMix64::new(mixer.next_u64())
    }

    /// The up/down timeline of `card`. Pure: equal `(seed, rates,
    /// horizon, card)` always yields the same timeline.
    pub fn timeline(&self, card: usize) -> CardTimeline {
        if let Some(&(_, fault)) = self.overrides.iter().find(|&&(c, _)| c == card) {
            return CardTimeline { fault };
        }
        if self.rates.total() == 0.0 {
            return CardTimeline::HEALTHY;
        }
        let mut rng = self.rng_for(card, 0);
        let draw = rng.next_f64();
        // placement: strike inside the middle of the run, so a drawn
        // fault always has traffic before and after it
        let frac = 0.2 + 0.6 * rng.next_f64();
        let at = SimTime::from_ps((self.horizon.as_ps() as f64 * frac) as u64);
        let fault = if draw < self.rates.crash {
            Some(CardFault::Crash { at })
        } else if draw < self.rates.crash + self.rates.hang {
            Some(CardFault::Hang {
                at,
                outage: self.rates.hang_outage,
            })
        } else if draw < self.rates.total() {
            Some(CardFault::Flap {
                from: at,
                period: self.rates.flap_period,
                downtime: self.rates.flap_downtime,
            })
        } else {
            None
        };
        CardTimeline { fault }
    }

    /// The SEU-rate multiplier for `card`: `seu_factor` when the
    /// independent pressure draw lands, else 1. Pure per `(seed,
    /// card)`.
    pub fn seu_multiplier(&self, card: usize) -> f64 {
        if self.rates.seu_pressure == 0.0 {
            return 1.0;
        }
        let mut rng = self.rng_for(card, SEU_SALT);
        if rng.next_f64() < self.rates.seu_pressure {
            self.rates.seu_factor
        } else {
            1.0
        }
    }

    /// How many of the first `n` cards draw a card-level fault.
    pub fn faulted_cards(&self, n: usize) -> usize {
        (0..n)
            .filter(|&c| self.timeline(c).fault().is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: SimTime = SimTime::from_ms(10);

    #[test]
    fn timelines_are_pure() {
        let plan = ClusterFaultPlan::new(0xC1057E4, CardFaultRates::uniform(0.2), H);
        for c in 0..64 {
            assert_eq!(plan.timeline(c), plan.timeline(c));
            assert_eq!(plan.seu_multiplier(c), plan.seu_multiplier(c));
        }
    }

    #[test]
    fn equal_seeds_equal_schedules_different_seeds_differ() {
        let a = ClusterFaultPlan::new(9, CardFaultRates::uniform(0.25), H);
        let b = ClusterFaultPlan::new(9, CardFaultRates::uniform(0.25), H);
        let c = ClusterFaultPlan::new(10, CardFaultRates::uniform(0.25), H);
        let ta: Vec<_> = (0..64).map(|i| a.timeline(i)).collect();
        let tb: Vec<_> = (0..64).map(|i| b.timeline(i)).collect();
        let tc: Vec<_> = (0..64).map(|i| c.timeline(i)).collect();
        assert_eq!(ta, tb);
        assert_ne!(ta, tc);
    }

    #[test]
    fn zero_rates_keep_every_card_healthy() {
        let plan = ClusterFaultPlan::new(7, CardFaultRates::ZERO, H);
        assert_eq!(plan.faulted_cards(64), 0);
        assert_eq!(plan.seu_multiplier(5), 1.0);
        assert!(plan.timeline(5).is_up(H));
    }

    #[test]
    fn kill_override_crashes_exactly_that_card() {
        let plan = ClusterFaultPlan::new(7, CardFaultRates::ZERO, H).with_kill(3, 0.5);
        let half = SimTime::from_ms(5);
        assert!(plan.timeline(3).is_up(half - SimTime::from_us(1)));
        assert!(!plan.timeline(3).is_up(half));
        assert!(!plan.timeline(3).is_up(H));
        assert_eq!(plan.timeline(3).next_up(half), None);
        for c in 0..8 {
            if c != 3 {
                assert!(plan.timeline(c).is_up(H), "card {c}");
            }
        }
    }

    #[test]
    fn healthy_override_pins_a_drawn_fault_away() {
        let rates = CardFaultRates::uniform(1.0 / 3.0);
        let plan = ClusterFaultPlan::new(11, rates, H);
        let faulted = (0..64)
            .find(|&c| plan.timeline(c).fault().is_some())
            .expect("some card must draw a fault at rate 1");
        let pinned = plan.clone().with_fault(faulted, None);
        assert_eq!(pinned.timeline(faulted), CardTimeline::HEALTHY);
    }

    #[test]
    fn hang_recovers_and_crash_does_not() {
        let hang = CardTimeline {
            fault: Some(CardFault::Hang {
                at: SimTime::from_ms(2),
                outage: SimTime::from_ms(1),
            }),
        };
        assert!(hang.is_up(SimTime::from_ms(1)));
        assert!(!hang.is_up(SimTime::from_ms(2)));
        assert!(!hang.is_up(SimTime::from_us(2_900)));
        assert!(hang.is_up(SimTime::from_ms(3)));
        assert_eq!(
            hang.next_up(SimTime::from_us(2_500)),
            Some(SimTime::from_ms(3))
        );
        assert_eq!(hang.next_down(SimTime::ZERO), Some(SimTime::from_ms(2)));
        let crash = CardTimeline {
            fault: Some(CardFault::Crash {
                at: SimTime::from_ms(2),
            }),
        };
        assert_eq!(crash.next_up(SimTime::from_ms(2)), None);
        assert_eq!(
            crash.next_up(SimTime::from_ms(1)),
            Some(SimTime::from_ms(1))
        );
    }

    #[test]
    fn flap_alternates_and_reports_edges() {
        let flap = CardTimeline {
            fault: Some(CardFault::Flap {
                from: SimTime::from_ms(1),
                period: SimTime::from_ms(1),
                downtime: SimTime::from_us(250),
            }),
        };
        assert!(flap.is_up(SimTime::from_us(999)));
        assert!(!flap.is_up(SimTime::from_ms(1)));
        assert!(!flap.is_up(SimTime::from_us(1_100)));
        assert!(flap.is_up(SimTime::from_us(1_250)));
        assert!(!flap.is_up(SimTime::from_us(2_100)));
        assert_eq!(
            flap.next_up(SimTime::from_us(1_100)),
            Some(SimTime::from_us(1_250))
        );
        let edges = flap.transitions(SimTime::from_us(3_500));
        assert_eq!(
            edges,
            vec![
                (SimTime::from_ms(1), false),
                (SimTime::from_us(1_250), true),
                (SimTime::from_ms(2), false),
                (SimTime::from_us(2_250), true),
                (SimTime::from_ms(3), false),
                (SimTime::from_us(3_250), true),
            ]
        );
        // edges are consistent with point queries
        for &(t, up) in &edges {
            assert_eq!(flap.is_up(t), up, "at {t}");
        }
    }

    #[test]
    fn rate_shapes_card_fault_frequency() {
        let plan = ClusterFaultPlan::new(3, CardFaultRates::uniform(0.1), H);
        let n = 2_000;
        let hits = plan.faulted_cards(n);
        let expect = 0.3 * n as f64;
        assert!(
            (hits as f64 - expect).abs() < expect * 0.2,
            "expected ~{expect}, got {hits}"
        );
    }

    #[test]
    fn seu_pressure_draw_is_independent_of_the_card_fault_draw() {
        let bare = ClusterFaultPlan::new(21, CardFaultRates::uniform(0.2), H);
        let mut rates = CardFaultRates::uniform(0.2);
        rates.seu_pressure = 0.5;
        rates.seu_factor = 8.0;
        let with = ClusterFaultPlan::new(21, rates, H);
        for c in 0..128 {
            assert_eq!(
                bare.timeline(c),
                with.timeline(c),
                "adding SEU pressure changed the card-fault schedule at {c}"
            );
        }
        let pressured = (0..128).filter(|&c| with.seu_multiplier(c) > 1.0).count();
        assert!((32..=96).contains(&pressured), "pressured {pressured}/128");
    }

    #[test]
    #[should_panic(expected = "at most one card fault")]
    fn oversubscribed_rates_rejected() {
        let _ = ClusterFaultPlan::new(0, CardFaultRates::uniform(0.4), H);
    }

    #[test]
    #[should_panic(expected = "flap downtime")]
    fn flap_downtime_must_fit_the_period() {
        let rates = CardFaultRates {
            flap: 0.1,
            flap_period: SimTime::from_us(100),
            flap_downtime: SimTime::from_us(100),
            ..CardFaultRates::ZERO
        };
        let _ = ClusterFaultPlan::new(0, rates, H);
    }
}

//! Deterministic fault scheduling for chaos experiments.
//!
//! A [`FaultPlan`] turns a seed plus per-site rates into a reproducible
//! fault schedule: whether request number `i` of a run suffers a fault,
//! and at which site, is a *pure function* of `(seed, i)`. No mutable
//! RNG state is shared between decision points, so the schedule is
//! independent of thread interleaving, shard policy and evaluation
//! order — the properties the engine-fault test suite depends on.
//!
//! The sites model where a real partially-reconfigurable card breaks:
//! single-event upsets in configured frames, bit-rot in the bitstream
//! ROM, configurations torn mid-download, and transient PCI transfer
//! errors.
//!
//! # Examples
//!
//! ```
//! use aaod_sim::fault::{FaultPlan, FaultRates};
//!
//! let plan = FaultPlan::new(42, FaultRates::uniform(0.25));
//! // Pure: the same (seed, index) always gives the same decision.
//! assert_eq!(plan.decide(7), plan.decide(7));
//! ```

use crate::SplitMix64;

/// Where a scheduled fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// A single-event upset flips one bit of a configured frame.
    FrameBitFlip,
    /// A (re)configuration is torn: the tail of the frame set is lost.
    TornConfig,
    /// A stored bitstream payload byte in ROM is corrupted.
    RomPayload,
    /// A host↔card PCI transfer fails transiently and must be retried.
    PciTransient,
}

impl FaultSite {
    /// All sites, in the fixed order the plan's cumulative draw uses.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::FrameBitFlip,
        FaultSite::TornConfig,
        FaultSite::RomPayload,
        FaultSite::PciTransient,
    ];

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::FrameBitFlip => "frame-bit-flip",
            FaultSite::TornConfig => "torn-config",
            FaultSite::RomPayload => "rom-payload",
            FaultSite::PciTransient => "pci-transient",
        }
    }
}

/// Where a scheduled *latency* fault strikes — the time-domain
/// counterpart of [`FaultSite`]. Latency faults never corrupt state;
/// they stretch, stall or stop the modelled clock of the component
/// they hit, and are recovered by deadlines, load shedding and the
/// watchdog rather than by scrubbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LatencySite {
    /// The configuration port hangs for a fixed number of extra
    /// controller cycles during the next (re)configuration.
    StallConfig,
    /// The request's PCI transfers run at a fraction of nominal speed
    /// (cost multiplied by [`LatencyRates::slow_factor`]).
    SlowPci,
    /// The card stops making progress entirely; only a watchdog reset
    /// brings it back, and the in-flight work must be re-run.
    StuckCard,
}

impl LatencySite {
    /// All latency sites, in the fixed cumulative-draw order.
    pub const ALL: [LatencySite; 3] = [
        LatencySite::StallConfig,
        LatencySite::SlowPci,
        LatencySite::StuckCard,
    ];

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LatencySite::StallConfig => "stall-config",
            LatencySite::SlowPci => "slow-pci",
            LatencySite::StuckCard => "stuck-card",
        }
    }
}

/// Per-site latency-fault probabilities plus the magnitude knobs the
/// injection hooks apply when a fault lands.
///
/// Rates follow the same contract as [`FaultRates`]: independent
/// probabilities in `[0, 1]` whose sum must not exceed 1, applied per
/// request with at most one latency fault scheduled per request. The
/// latency draw is independent of the corruption draw, so a request
/// may suffer both a corruption fault and a latency fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRates {
    /// Probability the request's (re)configuration stalls.
    pub stall_config: f64,
    /// Probability the request's PCI transfers run slow.
    pub slow_pci: f64,
    /// Probability the card wedges on this request (watchdog
    /// territory).
    pub stuck_card: f64,
    /// Extra controller cycles a landed `StallConfig` hang costs.
    pub stall_cycles: u64,
    /// Cost multiplier a landed `SlowPci` applies to each transfer.
    pub slow_factor: u32,
}

impl Default for LatencyRates {
    fn default() -> Self {
        LatencyRates::ZERO
    }
}

impl LatencyRates {
    /// No latency faults; magnitudes at their defaults.
    pub const ZERO: LatencyRates = LatencyRates {
        stall_config: 0.0,
        slow_pci: 0.0,
        stuck_card: 0.0,
        stall_cycles: LatencyRates::DEFAULT_STALL_CYCLES,
        slow_factor: LatencyRates::DEFAULT_SLOW_FACTOR,
    };

    /// Default `StallConfig` hang: 50k cycles of the 50 MHz
    /// controller clock, i.e. one millisecond — comparable to a full
    /// miss reconfiguration, so a stall is visible but survivable.
    pub const DEFAULT_STALL_CYCLES: u64 = 50_000;

    /// Default `SlowPci` multiplier: transfers run at 1/8 speed.
    pub const DEFAULT_SLOW_FACTOR: u32 = 8;

    /// The same rate `p` at every latency site, default magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if `3 * p` exceeds 1.
    pub fn uniform(p: f64) -> LatencyRates {
        let r = LatencyRates {
            stall_config: p,
            slow_pci: p,
            stuck_card: p,
            ..LatencyRates::ZERO
        };
        r.validate();
        r
    }

    /// Sum of all site rates — the per-request latency-fault
    /// probability.
    pub fn total(&self) -> f64 {
        self.stall_config + self.slow_pci + self.stuck_card
    }

    /// Rate for one latency site.
    pub fn rate(&self, site: LatencySite) -> f64 {
        match site {
            LatencySite::StallConfig => self.stall_config,
            LatencySite::SlowPci => self.slow_pci,
            LatencySite::StuckCard => self.stuck_card,
        }
    }

    fn validate(&self) {
        for site in LatencySite::ALL {
            let p = self.rate(site);
            assert!(
                (0.0..=1.0).contains(&p),
                "latency rate for {} out of [0,1]: {p}",
                site.name()
            );
        }
        assert!(
            self.total() <= 1.0,
            "latency rates sum to {} > 1; at most one latency fault per request",
            self.total()
        );
        assert!(self.slow_factor >= 1, "slow factor must be at least 1");
    }
}

/// Per-site fault probabilities, each applied per request.
///
/// Rates are independent probabilities in `[0, 1]`; their sum must not
/// exceed 1 because at most one fault is scheduled per request (a
/// single draw is partitioned between the sites).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a request is followed by a frame bit-flip.
    pub frame_bit_flip: f64,
    /// Probability a request is followed by a torn configuration.
    pub torn_config: f64,
    /// Probability a request is followed by ROM payload corruption.
    pub rom_payload: f64,
    /// Probability a request's PCI transfer fails transiently.
    pub pci_transient: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const ZERO: FaultRates = FaultRates {
        frame_bit_flip: 0.0,
        torn_config: 0.0,
        rom_payload: 0.0,
        pci_transient: 0.0,
    };

    /// The same rate `p` at every site.
    ///
    /// # Panics
    ///
    /// Panics if `4 * p` exceeds 1.
    pub fn uniform(p: f64) -> FaultRates {
        let r = FaultRates {
            frame_bit_flip: p,
            torn_config: p,
            rom_payload: p,
            pci_transient: p,
        };
        r.validate();
        r
    }

    /// Sum of all site rates — the per-request fault probability.
    pub fn total(&self) -> f64 {
        self.frame_bit_flip + self.torn_config + self.rom_payload + self.pci_transient
    }

    /// Rate for one site.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::FrameBitFlip => self.frame_bit_flip,
            FaultSite::TornConfig => self.torn_config,
            FaultSite::RomPayload => self.rom_payload,
            FaultSite::PciTransient => self.pci_transient,
        }
    }

    fn validate(&self) {
        for site in FaultSite::ALL {
            let p = self.rate(site);
            assert!(
                (0.0..=1.0).contains(&p),
                "fault rate for {} out of [0,1]: {p}",
                site.name()
            );
        }
        assert!(
            self.total() <= 1.0,
            "fault rates sum to {} > 1; at most one fault per request",
            self.total()
        );
    }
}

/// A seeded, reproducible fault schedule.
///
/// The plan never holds mutable state: [`FaultPlan::decide`] hashes the
/// seed with the request index and draws once, partitioning the unit
/// interval between the sites in [`FaultSite::ALL`] order. At most one
/// fault is scheduled per request.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    latency: LatencyRates,
}

/// Salt mixed into the latency draw so it is independent of the
/// corruption draw at the same index.
const LATENCY_SALT: u64 = 0x01A7_E4C1_7FA5_70FF_u64;

impl FaultPlan {
    /// Creates a plan from a seed and per-site rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or the rates sum past 1.
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        rates.validate();
        FaultPlan {
            seed,
            rates,
            latency: LatencyRates::ZERO,
        }
    }

    /// Adds a latency-fault schedule to the plan. The latency draw is
    /// independent of the corruption draw, so a request can suffer
    /// both (e.g. a slow transfer *and* a frame flip).
    ///
    /// # Panics
    ///
    /// Panics if any latency rate is outside `[0, 1]`, the rates sum
    /// past 1, or the slow factor is zero.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyRates) -> FaultPlan {
        latency.validate();
        self.latency = latency;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's per-site rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// The plan's latency-fault rates and magnitudes.
    pub fn latency(&self) -> LatencyRates {
        self.latency
    }

    /// `true` if every corruption rate is zero — [`FaultPlan::decide`]
    /// schedules nothing (latency faults are separate; see
    /// [`FaultPlan::has_latency`]).
    pub fn is_zero(&self) -> bool {
        self.rates.total() == 0.0
    }

    /// `true` if any latency-fault rate is nonzero.
    pub fn has_latency(&self) -> bool {
        self.latency.total() > 0.0
    }

    /// The fault (if any) scheduled against request `index`.
    ///
    /// Pure: equal `(seed, index)` always yields the same decision,
    /// regardless of call order or thread.
    pub fn decide(&self, index: u64) -> Option<FaultSite> {
        if self.is_zero() {
            return None;
        }
        let draw = self.rng_for(index).next_f64();
        let mut cumulative = 0.0;
        for site in FaultSite::ALL {
            cumulative += self.rates.rate(site);
            if draw < cumulative {
                return Some(site);
            }
        }
        None
    }

    /// A detail RNG for request `index`, independent of the decision
    /// draw — injection hooks use it to pick frames, bytes and bits.
    pub fn rng_for(&self, index: u64) -> SplitMix64 {
        // One SplitMix64 step over (seed, index) gives a well-mixed
        // per-request stream without shared mutable state.
        let mut mixer = SplitMix64::new(self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        SplitMix64::new(mixer.next_u64())
    }

    /// The latency fault (if any) scheduled against request `index`.
    ///
    /// Pure, like [`FaultPlan::decide`], and drawn from an independent
    /// stream: the latency decision at an index never perturbs the
    /// corruption decision at the same index, and vice versa.
    pub fn decide_latency(&self, index: u64) -> Option<LatencySite> {
        if !self.has_latency() {
            return None;
        }
        let mut mixer =
            SplitMix64::new(self.seed ^ LATENCY_SALT ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        let draw = SplitMix64::new(mixer.next_u64()).next_f64();
        let mut cumulative = 0.0;
        for site in LatencySite::ALL {
            cumulative += self.latency.rate(site);
            if draw < cumulative {
                return Some(site);
            }
        }
        None
    }

    /// How many of the first `n` requests have a scheduled fault.
    pub fn scheduled_in(&self, n: u64) -> usize {
        (0..n).filter(|&i| self.decide(i).is_some()).count()
    }

    /// How many of the first `n` requests have a scheduled latency
    /// fault.
    pub fn latency_scheduled_in(&self, n: u64) -> usize {
        (0..n).filter(|&i| self.decide_latency(i).is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::new(0xC0FFEE, FaultRates::uniform(0.2));
        for i in 0..256 {
            assert_eq!(plan.decide(i), plan.decide(i));
        }
    }

    #[test]
    fn equal_seeds_equal_schedules() {
        let a = FaultPlan::new(9, FaultRates::uniform(0.1));
        let b = FaultPlan::new(9, FaultRates::uniform(0.1));
        let sa: Vec<_> = (0..500).map(|i| a.decide(i)).collect();
        let sb: Vec<_> = (0..500).map(|i| b.decide(i)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, FaultRates::uniform(0.25));
        let b = FaultPlan::new(2, FaultRates::uniform(0.25));
        let sa: Vec<_> = (0..500).map(|i| a.decide(i)).collect();
        let sb: Vec<_> = (0..500).map(|i| b.decide(i)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn zero_plan_schedules_nothing() {
        let plan = FaultPlan::new(77, FaultRates::ZERO);
        assert!(plan.is_zero());
        assert_eq!(plan.scheduled_in(10_000), 0);
    }

    #[test]
    fn rate_shapes_frequency() {
        let plan = FaultPlan::new(3, FaultRates::uniform(0.05));
        let n = 20_000;
        let hits = plan.scheduled_in(n);
        let expect = 0.2 * n as f64;
        let got = hits as f64;
        assert!(
            (got - expect).abs() < expect * 0.15,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    fn all_sites_reachable() {
        let plan = FaultPlan::new(11, FaultRates::uniform(0.25));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2_000 {
            if let Some(site) = plan.decide(i) {
                seen.insert(site);
            }
        }
        assert_eq!(seen.len(), FaultSite::ALL.len(), "{seen:?}");
    }

    #[test]
    fn detail_rngs_are_independent_per_index() {
        let plan = FaultPlan::new(5, FaultRates::uniform(0.25));
        assert_ne!(plan.rng_for(0).next_u64(), plan.rng_for(1).next_u64());
        assert_eq!(plan.rng_for(4).next_u64(), plan.rng_for(4).next_u64());
    }

    #[test]
    #[should_panic(expected = "at most one fault")]
    fn oversubscribed_rates_rejected() {
        let _ = FaultPlan::new(0, FaultRates::uniform(0.3));
    }

    #[test]
    fn latency_decisions_are_pure_and_seeded() {
        let plan =
            FaultPlan::new(0xBEEF, FaultRates::ZERO).with_latency(LatencyRates::uniform(0.2));
        for i in 0..256 {
            assert_eq!(plan.decide_latency(i), plan.decide_latency(i));
        }
        let other =
            FaultPlan::new(0xBEE0, FaultRates::ZERO).with_latency(LatencyRates::uniform(0.2));
        let a: Vec<_> = (0..500).map(|i| plan.decide_latency(i)).collect();
        let b: Vec<_> = (0..500).map(|i| other.decide_latency(i)).collect();
        assert_ne!(a, b, "different seeds must differ");
    }

    #[test]
    fn latency_draw_is_independent_of_corruption_draw() {
        let bare = FaultPlan::new(21, FaultRates::uniform(0.1));
        let with = bare.with_latency(LatencyRates::uniform(0.3));
        for i in 0..500 {
            assert_eq!(
                bare.decide(i),
                with.decide(i),
                "adding latency rates changed the corruption schedule at {i}"
            );
        }
        // and the latency schedule actually fires
        assert!(with.latency_scheduled_in(500) > 0);
        assert_eq!(bare.latency_scheduled_in(500), 0);
    }

    #[test]
    fn all_latency_sites_reachable() {
        let plan =
            FaultPlan::new(4, FaultRates::ZERO).with_latency(LatencyRates::uniform(1.0 / 3.0));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2_000 {
            if let Some(site) = plan.decide_latency(i) {
                seen.insert(site);
            }
        }
        assert_eq!(seen.len(), LatencySite::ALL.len(), "{seen:?}");
    }

    #[test]
    fn latency_rate_shapes_frequency() {
        let plan = FaultPlan::new(8, FaultRates::ZERO).with_latency(LatencyRates::uniform(0.05));
        let n = 20_000;
        let hits = plan.latency_scheduled_in(n);
        let expect = 0.15 * n as f64;
        let got = hits as f64;
        assert!(
            (got - expect).abs() < expect * 0.15,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "at most one latency fault")]
    fn oversubscribed_latency_rates_rejected() {
        let _ = FaultPlan::new(0, FaultRates::ZERO).with_latency(LatencyRates::uniform(0.5));
    }

    #[test]
    #[should_panic(expected = "slow factor")]
    fn zero_slow_factor_rejected() {
        let _ = FaultPlan::new(0, FaultRates::ZERO).with_latency(LatencyRates {
            slow_factor: 0,
            ..LatencyRates::ZERO
        });
    }
}

//! Deterministic fault scheduling for chaos experiments.
//!
//! A [`FaultPlan`] turns a seed plus per-site rates into a reproducible
//! fault schedule: whether request number `i` of a run suffers a fault,
//! and at which site, is a *pure function* of `(seed, i)`. No mutable
//! RNG state is shared between decision points, so the schedule is
//! independent of thread interleaving, shard policy and evaluation
//! order — the properties the engine-fault test suite depends on.
//!
//! The sites model where a real partially-reconfigurable card breaks:
//! single-event upsets in configured frames, bit-rot in the bitstream
//! ROM, configurations torn mid-download, and transient PCI transfer
//! errors.
//!
//! # Examples
//!
//! ```
//! use aaod_sim::fault::{FaultPlan, FaultRates};
//!
//! let plan = FaultPlan::new(42, FaultRates::uniform(0.25));
//! // Pure: the same (seed, index) always gives the same decision.
//! assert_eq!(plan.decide(7), plan.decide(7));
//! ```

use crate::SplitMix64;

/// Where a scheduled fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// A single-event upset flips one bit of a configured frame.
    FrameBitFlip,
    /// A (re)configuration is torn: the tail of the frame set is lost.
    TornConfig,
    /// A stored bitstream payload byte in ROM is corrupted.
    RomPayload,
    /// A host↔card PCI transfer fails transiently and must be retried.
    PciTransient,
}

impl FaultSite {
    /// All sites, in the fixed order the plan's cumulative draw uses.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::FrameBitFlip,
        FaultSite::TornConfig,
        FaultSite::RomPayload,
        FaultSite::PciTransient,
    ];

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::FrameBitFlip => "frame-bit-flip",
            FaultSite::TornConfig => "torn-config",
            FaultSite::RomPayload => "rom-payload",
            FaultSite::PciTransient => "pci-transient",
        }
    }
}

/// Per-site fault probabilities, each applied per request.
///
/// Rates are independent probabilities in `[0, 1]`; their sum must not
/// exceed 1 because at most one fault is scheduled per request (a
/// single draw is partitioned between the sites).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a request is followed by a frame bit-flip.
    pub frame_bit_flip: f64,
    /// Probability a request is followed by a torn configuration.
    pub torn_config: f64,
    /// Probability a request is followed by ROM payload corruption.
    pub rom_payload: f64,
    /// Probability a request's PCI transfer fails transiently.
    pub pci_transient: f64,
}

impl FaultRates {
    /// No faults at all.
    pub const ZERO: FaultRates = FaultRates {
        frame_bit_flip: 0.0,
        torn_config: 0.0,
        rom_payload: 0.0,
        pci_transient: 0.0,
    };

    /// The same rate `p` at every site.
    ///
    /// # Panics
    ///
    /// Panics if `4 * p` exceeds 1.
    pub fn uniform(p: f64) -> FaultRates {
        let r = FaultRates {
            frame_bit_flip: p,
            torn_config: p,
            rom_payload: p,
            pci_transient: p,
        };
        r.validate();
        r
    }

    /// Sum of all site rates — the per-request fault probability.
    pub fn total(&self) -> f64 {
        self.frame_bit_flip + self.torn_config + self.rom_payload + self.pci_transient
    }

    /// Rate for one site.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::FrameBitFlip => self.frame_bit_flip,
            FaultSite::TornConfig => self.torn_config,
            FaultSite::RomPayload => self.rom_payload,
            FaultSite::PciTransient => self.pci_transient,
        }
    }

    fn validate(&self) {
        for site in FaultSite::ALL {
            let p = self.rate(site);
            assert!(
                (0.0..=1.0).contains(&p),
                "fault rate for {} out of [0,1]: {p}",
                site.name()
            );
        }
        assert!(
            self.total() <= 1.0,
            "fault rates sum to {} > 1; at most one fault per request",
            self.total()
        );
    }
}

/// A seeded, reproducible fault schedule.
///
/// The plan never holds mutable state: [`FaultPlan::decide`] hashes the
/// seed with the request index and draws once, partitioning the unit
/// interval between the sites in [`FaultSite::ALL`] order. At most one
/// fault is scheduled per request.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// Creates a plan from a seed and per-site rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or the rates sum past 1.
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        rates.validate();
        FaultPlan { seed, rates }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's per-site rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// `true` if every rate is zero — the plan schedules nothing.
    pub fn is_zero(&self) -> bool {
        self.rates.total() == 0.0
    }

    /// The fault (if any) scheduled against request `index`.
    ///
    /// Pure: equal `(seed, index)` always yields the same decision,
    /// regardless of call order or thread.
    pub fn decide(&self, index: u64) -> Option<FaultSite> {
        if self.is_zero() {
            return None;
        }
        let draw = self.rng_for(index).next_f64();
        let mut cumulative = 0.0;
        for site in FaultSite::ALL {
            cumulative += self.rates.rate(site);
            if draw < cumulative {
                return Some(site);
            }
        }
        None
    }

    /// A detail RNG for request `index`, independent of the decision
    /// draw — injection hooks use it to pick frames, bytes and bits.
    pub fn rng_for(&self, index: u64) -> SplitMix64 {
        // One SplitMix64 step over (seed, index) gives a well-mixed
        // per-request stream without shared mutable state.
        let mut mixer = SplitMix64::new(self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        SplitMix64::new(mixer.next_u64())
    }

    /// How many of the first `n` requests have a scheduled fault.
    pub fn scheduled_in(&self, n: u64) -> usize {
        (0..n).filter(|&i| self.decide(i).is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::new(0xC0FFEE, FaultRates::uniform(0.2));
        for i in 0..256 {
            assert_eq!(plan.decide(i), plan.decide(i));
        }
    }

    #[test]
    fn equal_seeds_equal_schedules() {
        let a = FaultPlan::new(9, FaultRates::uniform(0.1));
        let b = FaultPlan::new(9, FaultRates::uniform(0.1));
        let sa: Vec<_> = (0..500).map(|i| a.decide(i)).collect();
        let sb: Vec<_> = (0..500).map(|i| b.decide(i)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, FaultRates::uniform(0.25));
        let b = FaultPlan::new(2, FaultRates::uniform(0.25));
        let sa: Vec<_> = (0..500).map(|i| a.decide(i)).collect();
        let sb: Vec<_> = (0..500).map(|i| b.decide(i)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn zero_plan_schedules_nothing() {
        let plan = FaultPlan::new(77, FaultRates::ZERO);
        assert!(plan.is_zero());
        assert_eq!(plan.scheduled_in(10_000), 0);
    }

    #[test]
    fn rate_shapes_frequency() {
        let plan = FaultPlan::new(3, FaultRates::uniform(0.05));
        let n = 20_000;
        let hits = plan.scheduled_in(n);
        let expect = 0.2 * n as f64;
        let got = hits as f64;
        assert!(
            (got - expect).abs() < expect * 0.15,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    fn all_sites_reachable() {
        let plan = FaultPlan::new(11, FaultRates::uniform(0.25));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2_000 {
            if let Some(site) = plan.decide(i) {
                seen.insert(site);
            }
        }
        assert_eq!(seen.len(), FaultSite::ALL.len(), "{seen:?}");
    }

    #[test]
    fn detail_rngs_are_independent_per_index() {
        let plan = FaultPlan::new(5, FaultRates::uniform(0.25));
        assert_ne!(plan.rng_for(0).next_u64(), plan.rng_for(1).next_u64());
        assert_eq!(plan.rng_for(4).next_u64(), plan.rng_for(4).next_u64());
    }

    #[test]
    #[should_panic(expected = "at most one fault")]
    fn oversubscribed_rates_rejected() {
        let _ = FaultPlan::new(0, FaultRates::uniform(0.3));
    }
}

//! Simulation foundation for the `aaod` co-processor workspace.
//!
//! This crate provides the shared, dependency-free building blocks every
//! hardware model in the workspace uses:
//!
//! * [`SimTime`] — picosecond-resolution simulated time, the unit every
//!   component reports latency in.
//! * [`Clock`] — a clock domain that converts between cycles and
//!   [`SimTime`]. The co-processor models three domains (PCI 33 MHz,
//!   microcontroller/configuration 50 MHz, fabric 100 MHz).
//! * [`SplitMix64`] — a tiny deterministic RNG so every experiment is
//!   reproducible from a seed, without external dependencies.
//! * [`FaultPlan`] — a seeded, per-request fault schedule for the
//!   chaos/recovery experiments; decisions are pure functions of
//!   `(seed, request index)`.
//! * [`stats`] — mean / percentile / histogram helpers used by the
//!   workload metrics.
//! * [`report`] — fixed-width table rendering used by the benches and
//!   examples to print paper-style result tables.
//! * [`trace`] — the deterministic modelled-time event/span recorder
//!   and metrics registry behind the observability layer.
//!
//! # Examples
//!
//! ```
//! use aaod_sim::{Clock, SimTime};
//!
//! let pci = Clock::from_hz(33_000_000);
//! let t = pci.cycles(33_000_000); // one second of PCI cycles
//! assert_eq!(t, SimTime::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod fault;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::Clock;
pub use cluster::{CardFault, CardFaultRates, CardTimeline, ClusterFaultPlan};
pub use fault::{FaultPlan, FaultRates, FaultSite, LatencyRates, LatencySite};
pub use rng::SplitMix64;
pub use time::SimTime;
pub use trace::{
    DetailEvent, DetailLog, EventKind, MetricsRegistry, TraceConfig, TraceEvent, TraceLevel,
    TraceReport, Tracer,
};

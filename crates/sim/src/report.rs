//! Paper-style result tables.
//!
//! Every experiment bench and example prints its results through
//! [`Table`] so the regenerated tables share one format and are easy to
//! diff against EXPERIMENTS.md.

use std::fmt;

/// A fixed-width text table with a title, headers and rows.
///
/// # Examples
///
/// ```
/// use aaod_sim::report::Table;
///
/// let mut t = Table::new("E2: compression ratio", &["codec", "ratio"]);
/// t.row(&["rle", "2.31"]);
/// t.row(&["lzss", "3.78"]);
/// let s = t.to_string();
/// assert!(s.contains("codec"));
/// assert!(s.contains("3.78"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let total: usize = w.iter().sum::<usize>() + 3 * w.len().saturating_sub(1);
        writeln!(f, "== {} ==", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:<width$}", h, width = w[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{:<width$}", cell, width = w[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 significant decimals, for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 significant decimals, for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_rows() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.row(&["1", "2"]);
        t.row_owned(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.starts_with("== demo =="));
        assert!(s.contains("a   | bee"));
        assert!(s.contains("333 | 4"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.1234), "12.3%");
    }
}

//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the workspace — workload arrival order,
//! bitstream filler content, the random replacement policy — draws from
//! [`SplitMix64`], a tiny, well-mixed, fully deterministic generator.
//! Using our own generator (rather than an external crate) guarantees
//! experiment outputs are bit-stable across toolchain and dependency
//! upgrades.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// Not cryptographically secure; used only for reproducible simulation
/// inputs.
///
/// # Examples
///
/// ```
/// use aaod_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (slight modulo bias is irrelevant at simulation scale).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Splits off an independent generator (for giving sub-components
    /// their own streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference value for SplitMix64 with seed 0 (per the public
        // reference implementation): first output is 0xE220A8397B1DCDAF.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(2);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        // Extremely unlikely to be all zero after filling.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_differ() {
        let mut r = SplitMix64::new(5);
        let mut s = r.split();
        assert_ne!(r.next_u64(), s.next_u64());
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

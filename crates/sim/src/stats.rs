//! Summary statistics for experiment metrics.
//!
//! The workload harness records per-request latencies and summarises
//! them with [`Summary`]; benches print the summaries as table rows.

use crate::SimTime;

/// An online accumulator over `f64` samples.
///
/// # Examples
///
/// ```
/// use aaod_sim::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    samples: Vec<f64>,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest sample; 0 for an empty accumulator.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .finite_or_zero()
    }

    /// Largest sample; 0 for an empty accumulator.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .finite_or_zero()
    }

    /// The `q`-quantile (`0.0..=1.0`) by nearest-rank; 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank]
    }

    /// Appends every sample of `other` — used when combining
    /// per-shard accumulators into an engine-wide one.
    pub fn merge(&mut self, other: &Accumulator) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Produces an immutable [`Summary`] of the samples.
    ///
    /// Sorts the samples once and indexes every order statistic out of
    /// the single sorted copy, rather than paying a clone + sort per
    /// quantile.
    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let rank = |q: f64| ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Summary {
            count: sorted.len(),
            mean: self.mean(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: sorted[rank(0.5)],
            p95: sorted[rank(0.95)],
            p99: sorted[rank(0.99)],
        }
    }
}

/// Maps the fold identity of an empty sample set to zero.
trait FiniteOrZero {
    fn finite_or_zero(self) -> f64;
}

impl FiniteOrZero for f64 {
    fn finite_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// A frozen statistical summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

/// Accumulates [`SimTime`] samples, summarising in nanoseconds.
///
/// # Examples
///
/// ```
/// use aaod_sim::{stats::TimeAccumulator, SimTime};
///
/// let mut acc = TimeAccumulator::new();
/// acc.push(SimTime::from_ns(100));
/// acc.push(SimTime::from_ns(300));
/// assert_eq!(acc.summary_ns().mean, 200.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeAccumulator {
    inner: Accumulator,
    total: SimTime,
}

impl TimeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TimeAccumulator::default()
    }

    /// Adds a duration sample.
    pub fn push(&mut self, t: SimTime) {
        self.inner.push(t.as_ns());
        self.total += t;
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimTime {
        self.total
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Appends every sample of `other`.
    pub fn merge(&mut self, other: &TimeAccumulator) {
        self.inner.merge(&other.inner);
        self.total += other.total;
    }

    /// Summary with all fields in nanoseconds.
    pub fn summary_ns(&self) -> Summary {
        self.inner.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_zeroed() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), 0.0);
        assert_eq!(acc.max(), 0.0);
        assert_eq!(acc.quantile(0.5), 0.0);
    }

    #[test]
    fn summary_fields() {
        let mut acc = Accumulator::new();
        for x in 1..=100 {
            acc.push(x as f64);
        }
        let s = acc.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 51.0); // nearest-rank: round(99 * 0.5) = 50 -> value 51
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        Accumulator::new().quantile(1.5);
    }

    #[test]
    fn time_accumulator_totals() {
        let mut acc = TimeAccumulator::new();
        acc.push(SimTime::from_ns(10));
        acc.push(SimTime::from_ns(30));
        assert_eq!(acc.total(), SimTime::from_ns(40));
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.summary_ns().max, 30.0);
    }

    #[test]
    fn merge_appends_samples() {
        let mut a = TimeAccumulator::new();
        a.push(SimTime::from_ns(10));
        let mut b = TimeAccumulator::new();
        b.push(SimTime::from_ns(30));
        b.push(SimTime::from_ns(50));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), SimTime::from_ns(90));
        assert_eq!(a.summary_ns().max, 50.0);
    }

    #[test]
    fn quantile_single_sample() {
        let mut acc = Accumulator::new();
        acc.push(42.0);
        assert_eq!(acc.quantile(0.0), 42.0);
        assert_eq!(acc.quantile(1.0), 42.0);
    }

    #[test]
    fn single_sample_summary_is_degenerate() {
        let mut acc = Accumulator::new();
        acc.push(7.5);
        let s = acc.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.p99, 7.5);
    }

    #[test]
    fn all_equal_samples_collapse_every_quantile() {
        let mut acc = Accumulator::new();
        for _ in 0..50 {
            acc.push(3.0);
        }
        let s = acc.summary();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 3.0);
        assert_eq!(s.p99, 3.0);
    }

    #[test]
    fn merging_an_empty_accumulator_is_identity() {
        let mut a = Accumulator::new();
        a.push(1.0);
        a.push(9.0);
        let before = a.summary();
        a.merge(&Accumulator::new());
        assert_eq!(a.summary(), before);
        let mut empty = TimeAccumulator::new();
        empty.merge(&TimeAccumulator::new());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.total(), SimTime::ZERO);
        assert_eq!(empty.summary_ns(), Summary::default());
    }

    #[test]
    fn empty_summary_is_the_default() {
        assert_eq!(Accumulator::new().summary(), Summary::default());
    }
}

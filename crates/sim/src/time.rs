//! Simulated time.
//!
//! Every hardware model in the workspace accounts for latency in
//! [`SimTime`], a picosecond-resolution duration. Picoseconds keep the
//! arithmetic exact for every clock frequency used by the co-processor
//! (33 MHz PCI is a non-integer number of nanoseconds per cycle).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulated duration (or instant, measured from simulation start) with
/// picosecond resolution.
///
/// `SimTime` is an additive quantity: component models return the time an
/// operation took and callers sum them. The u64 representation covers
/// roughly 213 days of simulated time, far beyond any experiment here.
///
/// # Examples
///
/// ```
/// use aaod_sim::SimTime;
///
/// let a = SimTime::from_ns(1500);
/// let b = SimTime::from_us(1);
/// assert_eq!((a + b).as_ns(), 2500.0);
/// assert!(a > b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a duration from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration in nanoseconds (fractional).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration in microseconds (fractional).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration in milliseconds (fractional).
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration in seconds (fractional).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; clamps at [`SimTime::ZERO`].
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on underflow; use [`SimTime::saturating_sub`] when the
    /// ordering is not statically known.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.2}ns", self.as_ns())
        } else if ps < 1_000_000_000 {
            write!(f, "{:.2}us", self.as_us())
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.2}ms", self.as_ms())
        } else {
            write!(f, "{:.3}s", self.as_secs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn arithmetic_is_additive() {
        let mut t = SimTime::from_ns(10);
        t += SimTime::from_ns(5);
        assert_eq!(t, SimTime::from_ns(15));
        assert_eq!(t - SimTime::from_ns(5), SimTime::from_ns(10));
        assert_eq!(t * 2, SimTime::from_ns(30));
        assert_eq!(t / 3, SimTime::from_ns(5));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_ns(1));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::from_ps(500).to_string(), "500ps");
        assert_eq!(SimTime::from_ns(1).to_string(), "1.00ns");
        assert_eq!(SimTime::from_us(2).to_string(), "2.00us");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.00ms");
        assert_eq!(SimTime::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_ns(3);
        let b = SimTime::from_ns(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn is_zero() {
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_ps(1).is_zero());
    }
}

//! Deterministic modelled-time trace and metrics layer.
//!
//! Every component in the workspace accounts for latency in modelled
//! [`SimTime`]; this module makes that accounting *visible*. A
//! [`Tracer`] records typed [`TraceEvent`]s — job and stage spans plus
//! instantaneous markers for cache hits, evictions, PCI bursts, fault
//! injection and recovery, breaker transitions and watchdog resets —
//! keyed by modelled picosecond timestamps. Because every timestamp is
//! modelled, a trace is a pure function of (workload, seed, config):
//! the same run always produces the same bytes, which makes golden
//! snapshot tests byte-exact and turns the trace into a regression
//! oracle.
//!
//! # Levels
//!
//! Tracing is gated by [`TraceConfig`]:
//!
//! * [`TraceLevel::Off`] — every record call returns immediately; the
//!   hot path is unperturbed (this is the default).
//! * [`TraceLevel::Counters`] — events update the [`MetricsRegistry`]
//!   (counters + per-stage histograms) but are not stored.
//! * [`TraceLevel::Full`] — events are additionally kept in a bounded
//!   ring buffer for export.
//!
//! Tracing never advances modelled time: it only observes durations
//! the component models already computed, so enabling it cannot change
//! any simulation result.
//!
//! # Sharding
//!
//! Each worker shard owns its own [`Tracer`] (lock-free by
//! construction); per-shard event streams are deterministic and are
//! merged into a single [`TraceReport`] ordered by `(shard, seq)`.
//! Two pseudo-shards carry engine-level events: [`PRODUCER_SHARD`]
//! (admission / enqueue) and [`ENGINE_SHARD`] (redistribution and
//! requeue rescue).
//!
//! # Export
//!
//! [`TraceReport::to_jsonl`] writes one canonical JSON object per
//! event (fixed key order, integer picoseconds — byte-stable), and
//! [`TraceReport::to_chrome_trace`] writes Chrome `trace_event` JSON
//! loadable in `about:tracing` or [Perfetto](https://ui.perfetto.dev).

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Pseudo-shard id for engine-level admission/enqueue events.
pub const PRODUCER_SHARD: u32 = u32::MAX;

/// Pseudo-shard id for engine-level redistribution/requeue events.
pub const ENGINE_SHARD: u32 = u32::MAX - 1;

/// Pseudo-shard id for fleet-level router events (failover and hedge
/// decisions). Per-card health edges ([`EventKind::CardDown`] /
/// [`EventKind::CardUp`]) are recorded on the card's own shard id so
/// each card's health timeline stays time-ordered.
pub const CLUSTER_SHARD: u32 = u32::MAX - 2;

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TraceLevel {
    /// Record nothing; every tracer call is an early return.
    #[default]
    Off,
    /// Maintain the [`MetricsRegistry`] but store no events.
    Counters,
    /// Maintain the registry and keep events in the ring buffer.
    Full,
}

/// Tracer configuration: level plus ring-buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// What to record.
    pub level: TraceLevel,
    /// Maximum events retained per shard at [`TraceLevel::Full`];
    /// older events are dropped (and counted) once full.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig::default()
    }

    /// Counters-only tracing.
    pub fn counters() -> Self {
        TraceConfig {
            level: TraceLevel::Counters,
            ..TraceConfig::default()
        }
    }

    /// Full event recording at the default capacity.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
            ..TraceConfig::default()
        }
    }
}

/// A stage of a job's life, in service order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Host→card input transfer over PCI.
    PciIn,
    /// Record-table lookup in the mini OS.
    Lookup,
    /// Compressed bitstream fetch from the configuration ROM.
    RomFetch,
    /// Windowed decompression + config-port frame writes.
    Reconfig,
    /// Staging input bytes into the data-in module.
    DataIn,
    /// Kernel execution on the fabric.
    Execute,
    /// Collecting output bytes from the data-out module.
    Collect,
    /// Card→host output transfer over PCI.
    PciOut,
    /// Modelled retry backoff during fault recovery.
    Backoff,
    /// Scrub / re-download repair work during fault recovery.
    Repair,
    /// Watchdog-triggered card reset.
    Reset,
}

impl Stage {
    /// Every stage, in canonical service order.
    pub const ALL: [Stage; 11] = [
        Stage::PciIn,
        Stage::Lookup,
        Stage::RomFetch,
        Stage::Reconfig,
        Stage::DataIn,
        Stage::Execute,
        Stage::Collect,
        Stage::PciOut,
        Stage::Backoff,
        Stage::Repair,
        Stage::Reset,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Stage::PciIn => "pci_in",
            Stage::Lookup => "lookup",
            Stage::RomFetch => "rom_fetch",
            Stage::Reconfig => "reconfig",
            Stage::DataIn => "data_in",
            Stage::Execute => "execute",
            Stage::Collect => "collect",
            Stage::PciOut => "pci_out",
            Stage::Backoff => "backoff",
            Stage::Repair => "repair",
            Stage::Reset => "reset",
        }
    }
}

/// Terminal state of a served job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobOutcome {
    /// Output produced (and verified, when verification is on).
    Completed,
    /// Retry budget exhausted; the job degraded to a fault error.
    Faulted,
    /// Served, but finished past its deadline; output dropped.
    DeadlineMissed,
}

impl JobOutcome {
    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Faulted => "faulted",
            JobOutcome::DeadlineMissed => "deadline_missed",
        }
    }
}

/// Mechanism that resolved a fault back to a healthy card.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RepairKind {
    /// Frame readback scrub.
    Scrub,
    /// ROM image re-download.
    Redownload,
    /// Immediate PCI driver retry.
    PciRetry,
    /// Corrupt frames dissolved by a policy eviction.
    EvictClear,
}

impl RepairKind {
    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            RepairKind::Scrub => "scrub",
            RepairKind::Redownload => "redownload",
            RepairKind::PciRetry => "pci_retry",
            RepairKind::EvictClear => "evict_clear",
        }
    }
}

/// Kind of injected fault (corruption and latency sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Frame SEU bit flip.
    FrameFlip,
    /// Torn (half-applied) configuration.
    TornConfig,
    /// ROM payload bit rot.
    RomRot,
    /// Transient PCI abort.
    PciTransient,
    /// Configuration-port stall.
    Stall,
    /// Slowed PCI transfer.
    SlowPci,
    /// Stuck card (healed by watchdog reset).
    StuckCard,
}

impl FaultKind {
    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FrameFlip => "frame_flip",
            FaultKind::TornConfig => "torn_config",
            FaultKind::RomRot => "rom_rot",
            FaultKind::PciTransient => "pci_transient",
            FaultKind::Stall => "stall",
            FaultKind::SlowPci => "slow_pci",
            FaultKind::StuckCard => "stuck_card",
        }
    }
}

/// Circuit-breaker phase, as seen by the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BreakerPhase {
    /// Admitting all work.
    Closed,
    /// Rejecting all work.
    Open,
    /// Admitting probe jobs.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }
}

/// Timestamp-free component-level event, recorded by the hardware
/// models ([`aaod-mcu`'s mini OS, the PCI driver]) into a [`DetailLog`]
/// and later stamped with a modelled time by the trace assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetailEvent {
    /// Residency check outcome for a batch's leading request.
    Residency {
        /// Target algorithm.
        algo: u16,
        /// `true` if the function was already configured on-fabric.
        hit: bool,
    },
    /// Decoded-bitstream cache outcome on a residency miss.
    DecodedCache {
        /// Target algorithm.
        algo: u16,
        /// `true` if the decoded frames were served from cache.
        hit: bool,
    },
    /// A resident function was evicted to free frames.
    Eviction {
        /// Evicted algorithm.
        algo: u16,
        /// Frames released.
        frames: u32,
    },
    /// Compressed bitstream fetched from the configuration ROM.
    RomFetch {
        /// Target algorithm.
        algo: u16,
        /// Compressed payload bytes read.
        bytes: u64,
    },
    /// Windowed decompression of a fetched bitstream.
    Decompress {
        /// Target algorithm.
        algo: u16,
        /// Decoder windows filled.
        windows: u64,
        /// Decompressed output bytes.
        bytes: u64,
    },
    /// Frames written through the configuration port.
    PortWrite {
        /// Target algorithm.
        algo: u16,
        /// Frames written.
        frames: u32,
    },
    /// An armed configuration-port stall was consumed.
    ConfigStall {
        /// Modelled time burned by the stall.
        time: SimTime,
    },
    /// A PCI transfer (one or more bursts) completed.
    PciBurst {
        /// `true` for host→card writes, `false` for reads.
        write: bool,
        /// Payload bytes moved.
        bytes: u64,
        /// Burst transactions issued.
        transactions: u64,
    },
}

/// Component-side buffer of [`DetailEvent`]s.
///
/// Hardware models push into this when enabled; the trace assembler
/// (the engine worker or traced runner) drains it after each
/// invocation and stamps the events with modelled timestamps. Disabled
/// logs drop pushes immediately.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DetailLog {
    enabled: bool,
    events: Vec<DetailEvent>,
}

impl DetailLog {
    /// A disabled, empty log.
    pub fn new() -> Self {
        DetailLog::default()
    }

    /// Enables or disables recording (disabling clears the buffer).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.events.clear();
        }
    }

    /// Whether pushes are currently recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` if enabled.
    pub fn push(&mut self, event: DetailEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Drains and returns every buffered event.
    pub fn take(&mut self) -> Vec<DetailEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves every buffered event into `buf` (appended in order),
    /// leaving this log empty but with its capacity intact. The
    /// allocation-free counterpart of [`DetailLog::take`] for hot
    /// loops that reuse a caller-owned buffer.
    pub fn drain_into(&mut self, buf: &mut Vec<DetailEvent>) {
        buf.append(&mut self.events);
    }

    /// Moves every buffered event into `dst`'s buffer in order. When
    /// `dst` is disabled the events are discarded, matching
    /// [`DetailLog::push`]. Neither log allocates if `dst` has
    /// capacity.
    pub fn drain_into_log(&mut self, dst: &mut DetailLog) {
        if dst.enabled {
            dst.events.append(&mut self.events);
        } else {
            self.events.clear();
        }
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A typed trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job entered service.
    JobOpen {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
    },
    /// A job left service.
    JobClose {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
        /// Terminal state.
        outcome: JobOutcome,
        /// `true` if the function was resident when the job ran.
        hit: bool,
    },
    /// A stage of a job began.
    StageOpen {
        /// Submission index of the job.
        job: u64,
        /// The stage.
        stage: Stage,
    },
    /// A stage of a job ended.
    StageClose {
        /// Submission index of the job.
        job: u64,
        /// The stage.
        stage: Stage,
    },
    /// The dynamic dispatcher dealt a job to the shard with the
    /// lowest modelled clock (`ShardPolicy::Dynamic` only; static
    /// partitions emit no deal events).
    Dispatch {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
        /// The shard the deal chose.
        to: u32,
        /// `true` when the deal landed on a shard where the
        /// algorithm was already resident (affinity preference).
        affinity: bool,
    },
    /// A work-stealing epoch moved a dealt-but-unserved job from the
    /// richest shard's queue tail to the poorest shard.
    Steal {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
        /// The shard the job was dealt to originally.
        from: u32,
        /// The shard that stole it.
        to: u32,
    },
    /// The producer pushed a job onto a shard queue.
    Enqueue {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
        /// Destination shard.
        to: u32,
    },
    /// A worker popped a job from its queue.
    Dequeue {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
    },
    /// Admission control dropped the job (deadline already passed).
    Shed {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
    },
    /// An open circuit breaker bounced the job off its shard.
    Bounced {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
    },
    /// A bounced job was re-served on a healthy shard.
    Redistributed {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
        /// The healthy shard that served it.
        to: u32,
    },
    /// A failed job was rescued on the spare card.
    Requeued {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
    },
    /// A component-level detail marker.
    Detail(DetailEvent),
    /// A scheduled fault activated on the card.
    FaultInjected {
        /// What landed.
        kind: FaultKind,
    },
    /// A scheduled fault could not land.
    FaultInert {
        /// What was scheduled.
        kind: FaultKind,
    },
    /// A fault was resolved back to a healthy card.
    FaultRepair {
        /// The mechanism that resolved it.
        kind: RepairKind,
    },
    /// A fault exhausted its retry budget.
    FaultFailed {
        /// Submission index of the failed job.
        job: u64,
        /// Target algorithm.
        algo: u16,
    },
    /// A recovery retry was spent.
    Retry {
        /// Submission index of the job.
        job: u64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The watchdog reset a stuck card.
    WatchdogReset {
        /// Submission index of the in-flight job.
        job: u64,
    },
    /// The shard's circuit breaker changed phase.
    Breaker {
        /// Previous phase.
        from: BreakerPhase,
        /// New phase.
        to: BreakerPhase,
    },
    /// A cluster card became unreachable (crash, hang or link flap).
    CardDown {
        /// The card that went dark.
        card: u32,
    },
    /// A cluster card came back (hang outage over, flap up-phase).
    CardUp {
        /// The recovered card.
        card: u32,
    },
    /// The cluster router redirected a job to another replica before
    /// service started (breaker rejection or card down at dispatch).
    Failover {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
        /// The card the job was headed to.
        from: u32,
        /// The replica it failed over to.
        to: u32,
    },
    /// The cluster router re-dispatched a job stranded mid-service on
    /// a card that went down.
    Hedge {
        /// Submission index of the job.
        job: u64,
        /// Target algorithm.
        algo: u16,
        /// The card the job was stranded on.
        from: u32,
        /// The replica the hedge ran on.
        to: u32,
    },
    /// A shard speculatively pre-configured an algorithm in its idle
    /// window (online predictive policy; see `aaod_core::predict`).
    Prefetch {
        /// The algorithm configured ahead of demand.
        algo: u16,
        /// The shard whose idle window paid for it.
        shard: u32,
    },
    /// The online router replicated a hot algorithm to another card
    /// after its popularity crossed the upper hysteresis threshold.
    Replicate {
        /// The algorithm replicated.
        algo: u16,
        /// The card that gained the replica.
        card: u32,
    },
    /// The online router dropped a replica after the algorithm's
    /// popularity fell below the lower hysteresis threshold.
    Evict {
        /// The algorithm de-replicated.
        algo: u16,
        /// The card that lost the replica.
        card: u32,
    },
}

/// One recorded event: modelled timestamp, shard, per-shard sequence
/// number and payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Modelled time of the event.
    pub ts: SimTime,
    /// Shard (or pseudo-shard) that recorded it.
    pub shard: u32,
    /// Per-shard sequence number (canonical sort key with `shard`).
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

/// Deterministic integer histogram of modelled durations.
///
/// Samples are stored as raw picoseconds so summaries and equality are
/// exact (no floating-point accumulation order effects).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimeHist {
    samples: Vec<u64>,
}

impl TimeHist {
    /// Records one duration.
    pub fn push(&mut self, t: SimTime) {
        self.samples.push(t.as_ps());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimTime {
        SimTime::from_ps(self.samples.iter().sum())
    }

    /// Smallest sample ([`SimTime::ZERO`] when empty).
    pub fn min(&self) -> SimTime {
        SimTime::from_ps(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Largest sample ([`SimTime::ZERO`] when empty).
    pub fn max(&self) -> SimTime {
        SimTime::from_ps(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Mean sample ([`SimTime::ZERO`] when empty).
    pub fn mean(&self) -> SimTime {
        if self.samples.is_empty() {
            SimTime::ZERO
        } else {
            self.total() / self.samples.len() as u64
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]` (matches
    /// [`crate::stats::Accumulator::quantile`]).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return SimTime::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        SimTime::from_ps(sorted[rank])
    }

    /// Appends another histogram's samples.
    pub fn merge(&mut self, other: &TimeHist) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Flat event counters derived from the trace stream.
///
/// These mirror the existing component ledgers (`OsStats`,
/// `FaultStats`, `OverloadStats`) so the invariant suite can check
/// that the trace and the ledgers agree exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct TraceCounters {
    pub jobs_opened: u64,
    pub jobs_completed: u64,
    pub jobs_faulted: u64,
    pub jobs_deadline_missed: u64,
    pub jobs_hit: u64,
    pub dispatched: u64,
    pub affinity_dispatches: u64,
    pub steals: u64,
    pub enqueued: u64,
    pub dequeued: u64,
    pub shed: u64,
    pub bounced: u64,
    pub redistributed: u64,
    pub requeued: u64,
    pub residency_hits: u64,
    pub residency_misses: u64,
    pub decoded_hits: u64,
    pub decoded_misses: u64,
    pub evictions: u64,
    pub evicted_frames: u64,
    pub rom_fetches: u64,
    pub rom_fetch_bytes: u64,
    pub decompress_windows: u64,
    pub decompress_bytes: u64,
    pub port_writes: u64,
    pub port_frames: u64,
    pub config_stalls: u64,
    pub pci_bursts: u64,
    pub pci_bytes: u64,
    pub pci_transactions: u64,
    pub faults_injected: u64,
    pub faults_inert: u64,
    pub repairs_scrub: u64,
    pub repairs_redownload: u64,
    pub repairs_pci_retry: u64,
    pub repairs_evict_clear: u64,
    pub faults_failed: u64,
    pub retries: u64,
    pub watchdog_resets: u64,
    pub breaker_trips: u64,
    pub breaker_transitions: u64,
    pub card_downs: u64,
    pub card_ups: u64,
    pub failovers: u64,
    pub hedges: u64,
    pub prefetches: u64,
    pub replications: u64,
    pub dereplications: u64,
}

impl TraceCounters {
    /// Faults resolved by any repair mechanism (mirrors
    /// `FaultStats::recovered`).
    pub fn repairs(&self) -> u64 {
        self.repairs_scrub
            + self.repairs_redownload
            + self.repairs_pci_retry
            + self.repairs_evict_clear
    }

    /// Sums another shard's counters into this one.
    pub fn merge(&mut self, o: &TraceCounters) {
        self.jobs_opened += o.jobs_opened;
        self.jobs_completed += o.jobs_completed;
        self.jobs_faulted += o.jobs_faulted;
        self.jobs_deadline_missed += o.jobs_deadline_missed;
        self.jobs_hit += o.jobs_hit;
        self.dispatched += o.dispatched;
        self.affinity_dispatches += o.affinity_dispatches;
        self.steals += o.steals;
        self.enqueued += o.enqueued;
        self.dequeued += o.dequeued;
        self.shed += o.shed;
        self.bounced += o.bounced;
        self.redistributed += o.redistributed;
        self.requeued += o.requeued;
        self.residency_hits += o.residency_hits;
        self.residency_misses += o.residency_misses;
        self.decoded_hits += o.decoded_hits;
        self.decoded_misses += o.decoded_misses;
        self.evictions += o.evictions;
        self.evicted_frames += o.evicted_frames;
        self.rom_fetches += o.rom_fetches;
        self.rom_fetch_bytes += o.rom_fetch_bytes;
        self.decompress_windows += o.decompress_windows;
        self.decompress_bytes += o.decompress_bytes;
        self.port_writes += o.port_writes;
        self.port_frames += o.port_frames;
        self.config_stalls += o.config_stalls;
        self.pci_bursts += o.pci_bursts;
        self.pci_bytes += o.pci_bytes;
        self.pci_transactions += o.pci_transactions;
        self.faults_injected += o.faults_injected;
        self.faults_inert += o.faults_inert;
        self.repairs_scrub += o.repairs_scrub;
        self.repairs_redownload += o.repairs_redownload;
        self.repairs_pci_retry += o.repairs_pci_retry;
        self.repairs_evict_clear += o.repairs_evict_clear;
        self.faults_failed += o.faults_failed;
        self.retries += o.retries;
        self.watchdog_resets += o.watchdog_resets;
        self.breaker_trips += o.breaker_trips;
        self.breaker_transitions += o.breaker_transitions;
        self.card_downs += o.card_downs;
        self.card_ups += o.card_ups;
        self.failovers += o.failovers;
        self.hedges += o.hedges;
        self.prefetches += o.prefetches;
        self.replications += o.replications;
        self.dereplications += o.dereplications;
    }
}

/// Aggregated metrics: flat counters, per-stage duration histograms
/// and per-algorithm reconfiguration / execution time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    /// Flat event counters.
    pub counters: TraceCounters,
    /// Duration histogram per stage.
    pub stage_time: BTreeMap<Stage, TimeHist>,
    /// Reconfiguration time per algorithm.
    pub algo_reconfig: BTreeMap<u16, TimeHist>,
    /// Execution time per algorithm.
    pub algo_exec: BTreeMap<u16, TimeHist>,
}

impl MetricsRegistry {
    fn absorb(&mut self, kind: &EventKind) {
        let c = &mut self.counters;
        match *kind {
            EventKind::JobOpen { .. } => c.jobs_opened += 1,
            EventKind::JobClose { outcome, hit, .. } => {
                match outcome {
                    JobOutcome::Completed => c.jobs_completed += 1,
                    JobOutcome::Faulted => c.jobs_faulted += 1,
                    JobOutcome::DeadlineMissed => c.jobs_deadline_missed += 1,
                }
                if hit {
                    c.jobs_hit += 1;
                }
            }
            EventKind::StageOpen { .. } | EventKind::StageClose { .. } => {}
            EventKind::Dispatch { affinity, .. } => {
                c.dispatched += 1;
                if affinity {
                    c.affinity_dispatches += 1;
                }
            }
            EventKind::Steal { .. } => c.steals += 1,
            EventKind::Enqueue { .. } => c.enqueued += 1,
            EventKind::Dequeue { .. } => c.dequeued += 1,
            EventKind::Shed { .. } => c.shed += 1,
            EventKind::Bounced { .. } => c.bounced += 1,
            EventKind::Redistributed { .. } => c.redistributed += 1,
            EventKind::Requeued { .. } => c.requeued += 1,
            EventKind::Detail(d) => match d {
                DetailEvent::Residency { hit, .. } => {
                    if hit {
                        c.residency_hits += 1;
                    } else {
                        c.residency_misses += 1;
                    }
                }
                DetailEvent::DecodedCache { hit, .. } => {
                    if hit {
                        c.decoded_hits += 1;
                    } else {
                        c.decoded_misses += 1;
                    }
                }
                DetailEvent::Eviction { frames, .. } => {
                    c.evictions += 1;
                    c.evicted_frames += frames as u64;
                }
                DetailEvent::RomFetch { bytes, .. } => {
                    c.rom_fetches += 1;
                    c.rom_fetch_bytes += bytes;
                }
                DetailEvent::Decompress { windows, bytes, .. } => {
                    c.decompress_windows += windows;
                    c.decompress_bytes += bytes;
                }
                DetailEvent::PortWrite { frames, .. } => {
                    c.port_writes += 1;
                    c.port_frames += frames as u64;
                }
                DetailEvent::ConfigStall { .. } => c.config_stalls += 1,
                DetailEvent::PciBurst {
                    bytes,
                    transactions,
                    ..
                } => {
                    c.pci_bursts += 1;
                    c.pci_bytes += bytes;
                    c.pci_transactions += transactions;
                }
            },
            EventKind::FaultInjected { .. } => c.faults_injected += 1,
            EventKind::FaultInert { .. } => c.faults_inert += 1,
            EventKind::FaultRepair { kind } => match kind {
                RepairKind::Scrub => c.repairs_scrub += 1,
                RepairKind::Redownload => c.repairs_redownload += 1,
                RepairKind::PciRetry => c.repairs_pci_retry += 1,
                RepairKind::EvictClear => c.repairs_evict_clear += 1,
            },
            EventKind::FaultFailed { .. } => c.faults_failed += 1,
            EventKind::Retry { .. } => c.retries += 1,
            EventKind::WatchdogReset { .. } => c.watchdog_resets += 1,
            EventKind::Breaker { from, to } => {
                c.breaker_transitions += 1;
                if from == BreakerPhase::Closed && to == BreakerPhase::Open {
                    c.breaker_trips += 1;
                }
            }
            EventKind::CardDown { .. } => c.card_downs += 1,
            EventKind::CardUp { .. } => c.card_ups += 1,
            EventKind::Failover { .. } => c.failovers += 1,
            EventKind::Hedge { .. } => c.hedges += 1,
            EventKind::Prefetch { .. } => c.prefetches += 1,
            EventKind::Replicate { .. } => c.replications += 1,
            EventKind::Evict { .. } => c.dereplications += 1,
        }
    }

    /// Merges another registry (counters summed, histograms appended).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.counters.merge(&other.counters);
        for (stage, hist) in &other.stage_time {
            self.stage_time.entry(*stage).or_default().merge(hist);
        }
        for (algo, hist) in &other.algo_reconfig {
            self.algo_reconfig.entry(*algo).or_default().merge(hist);
        }
        for (algo, hist) in &other.algo_exec {
            self.algo_exec.entry(*algo).or_default().merge(hist);
        }
    }
}

/// A per-shard event recorder.
///
/// Cheap when off: [`Tracer::record`] returns before constructing
/// anything. At [`TraceLevel::Full`] events land in a bounded ring
/// buffer (oldest dropped first, with a drop count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tracer {
    cfg: TraceConfig,
    shard: u32,
    seq: u64,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl Tracer {
    /// A tracer for `shard` under `cfg`.
    pub fn new(cfg: TraceConfig, shard: u32) -> Self {
        Tracer {
            cfg,
            shard,
            seq: 0,
            events: VecDeque::new(),
            dropped: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.cfg.level
    }

    /// `true` unless the level is [`TraceLevel::Off`].
    pub fn enabled(&self) -> bool {
        self.cfg.level != TraceLevel::Off
    }

    /// Records one event at modelled time `ts`.
    pub fn record(&mut self, ts: SimTime, kind: EventKind) {
        if self.cfg.level == TraceLevel::Off {
            return;
        }
        self.metrics.absorb(&kind);
        if self.cfg.level == TraceLevel::Full {
            if self.events.capacity() < self.cfg.capacity {
                // One-time ring allocation (lazy, so cheaper levels pay
                // nothing): without it the deque re-allocates and copies
                // itself ~17 times on the way to a 2^16 ring, all of it
                // inside the serving hot loop. At capacity the
                // pop-front/push-back recycle below is allocation-free.
                self.events
                    .reserve_exact(self.cfg.capacity - self.events.len());
            }
            if self.events.len() >= self.cfg.capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(TraceEvent {
                ts,
                shard: self.shard,
                seq: self.seq,
                kind,
            });
        }
        self.seq += 1;
    }

    /// Records a stage span: `StageOpen` at `start`, `StageClose` at
    /// `start + dur`, and the duration into the per-stage (and, for
    /// reconfiguration/execution, per-algorithm) histograms.
    /// Zero-duration stages are skipped.
    pub fn span(&mut self, start: SimTime, dur: SimTime, job: u64, stage: Stage, algo: u16) {
        if self.cfg.level == TraceLevel::Off || dur.is_zero() {
            return;
        }
        self.record(start, EventKind::StageOpen { job, stage });
        self.record(start + dur, EventKind::StageClose { job, stage });
        self.metrics.stage_time.entry(stage).or_default().push(dur);
        match stage {
            Stage::Reconfig => self
                .metrics
                .algo_reconfig
                .entry(algo)
                .or_default()
                .push(dur),
            Stage::Execute => self.metrics.algo_exec.entry(algo).or_default().push(dur),
            _ => {}
        }
    }

    /// Records a batch of component details at modelled time `ts`.
    pub fn details(&mut self, ts: SimTime, details: &[DetailEvent]) {
        if self.cfg.level == TraceLevel::Off {
            return;
        }
        for d in details {
            self.record(ts, EventKind::Detail(*d));
        }
    }

    /// Consumes the tracer into its shard's share of the report.
    pub fn finish(self) -> TraceShard {
        TraceShard {
            shard: self.shard,
            events: self.events.into_iter().collect(),
            dropped: self.dropped,
            metrics: self.metrics,
        }
    }
}

/// One shard's finished event stream and metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceShard {
    /// Which shard recorded this.
    pub shard: u32,
    /// The events, in sequence order.
    pub events: Vec<TraceEvent>,
    /// Events dropped by the ring buffer.
    pub dropped: u64,
    /// This shard's metrics.
    pub metrics: MetricsRegistry,
}

/// The merged trace of a run: events in canonical `(shard, seq)`
/// order, the drop count, and the aggregated [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Every retained event, sorted by `(shard, seq)`.
    pub events: Vec<TraceEvent>,
    /// Events dropped by ring buffers across all shards.
    pub dropped: u64,
    /// Aggregated metrics.
    pub metrics: MetricsRegistry,
}

impl TraceReport {
    /// Merges per-shard streams into one canonical report.
    pub fn assemble(shards: Vec<TraceShard>) -> Self {
        let mut shards = shards;
        shards.sort_by_key(|s| s.shard);
        let mut report = TraceReport::default();
        for shard in shards {
            report.dropped += shard.dropped;
            report.metrics.merge(&shard.metrics);
            report.events.extend(shard.events);
        }
        report
    }

    /// Canonical JSONL export: one event per line, fixed key order,
    /// integer picosecond timestamps — byte-identical for identical
    /// (workload, seed, config).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            jsonl_line(&mut out, e);
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (load in `about:tracing` or
    /// [Perfetto](https://ui.perfetto.dev)). Spans become `B`/`E`
    /// pairs, markers become thread-scoped instants; `tid` is the
    /// shard, timestamps are modelled microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128 + 64);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            chrome_record(&mut out, e);
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }
}

/// Formats a picosecond instant as fractional microseconds with a
/// fixed six-digit fraction (deterministic, no floats).
fn chrome_ts(t: SimTime) -> String {
    let ps = t.as_ps();
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn jsonl_line(out: &mut String, e: &TraceEvent) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"shard\":{},\"seq\":{},\"ts_ps\":{}",
        e.shard,
        e.seq,
        e.ts.as_ps()
    );
    match e.kind {
        EventKind::JobOpen { job, algo } => {
            let _ = write!(out, ",\"event\":\"job_open\",\"job\":{job},\"algo\":{algo}");
        }
        EventKind::JobClose {
            job,
            algo,
            outcome,
            hit,
        } => {
            let _ = write!(
                out,
                ",\"event\":\"job_close\",\"job\":{job},\"algo\":{algo},\"outcome\":\"{}\",\"hit\":{hit}",
                outcome.name()
            );
        }
        EventKind::StageOpen { job, stage } => {
            let _ = write!(
                out,
                ",\"event\":\"stage_open\",\"job\":{job},\"stage\":\"{}\"",
                stage.name()
            );
        }
        EventKind::StageClose { job, stage } => {
            let _ = write!(
                out,
                ",\"event\":\"stage_close\",\"job\":{job},\"stage\":\"{}\"",
                stage.name()
            );
        }
        EventKind::Dispatch {
            job,
            algo,
            to,
            affinity,
        } => {
            let _ = write!(
                out,
                ",\"event\":\"dispatch\",\"job\":{job},\"algo\":{algo},\"to\":{to},\"affinity\":{affinity}"
            );
        }
        EventKind::Steal {
            job,
            algo,
            from,
            to,
        } => {
            let _ = write!(
                out,
                ",\"event\":\"steal\",\"job\":{job},\"algo\":{algo},\"from\":{from},\"to\":{to}"
            );
        }
        EventKind::Enqueue { job, algo, to } => {
            let _ = write!(
                out,
                ",\"event\":\"enqueue\",\"job\":{job},\"algo\":{algo},\"to\":{to}"
            );
        }
        EventKind::Dequeue { job, algo } => {
            let _ = write!(out, ",\"event\":\"dequeue\",\"job\":{job},\"algo\":{algo}");
        }
        EventKind::Shed { job, algo } => {
            let _ = write!(out, ",\"event\":\"shed\",\"job\":{job},\"algo\":{algo}");
        }
        EventKind::Bounced { job, algo } => {
            let _ = write!(out, ",\"event\":\"bounced\",\"job\":{job},\"algo\":{algo}");
        }
        EventKind::Redistributed { job, algo, to } => {
            let _ = write!(
                out,
                ",\"event\":\"redistributed\",\"job\":{job},\"algo\":{algo},\"to\":{to}"
            );
        }
        EventKind::Requeued { job, algo } => {
            let _ = write!(out, ",\"event\":\"requeued\",\"job\":{job},\"algo\":{algo}");
        }
        EventKind::Detail(d) => match d {
            DetailEvent::Residency { algo, hit } => {
                let _ = write!(
                    out,
                    ",\"event\":\"residency\",\"algo\":{algo},\"hit\":{hit}"
                );
            }
            DetailEvent::DecodedCache { algo, hit } => {
                let _ = write!(
                    out,
                    ",\"event\":\"decoded_cache\",\"algo\":{algo},\"hit\":{hit}"
                );
            }
            DetailEvent::Eviction { algo, frames } => {
                let _ = write!(
                    out,
                    ",\"event\":\"eviction\",\"algo\":{algo},\"frames\":{frames}"
                );
            }
            DetailEvent::RomFetch { algo, bytes } => {
                let _ = write!(
                    out,
                    ",\"event\":\"rom_fetch\",\"algo\":{algo},\"bytes\":{bytes}"
                );
            }
            DetailEvent::Decompress {
                algo,
                windows,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"event\":\"decompress\",\"algo\":{algo},\"windows\":{windows},\"bytes\":{bytes}"
                );
            }
            DetailEvent::PortWrite { algo, frames } => {
                let _ = write!(
                    out,
                    ",\"event\":\"port_write\",\"algo\":{algo},\"frames\":{frames}"
                );
            }
            DetailEvent::ConfigStall { time } => {
                let _ = write!(
                    out,
                    ",\"event\":\"config_stall\",\"stall_ps\":{}",
                    time.as_ps()
                );
            }
            DetailEvent::PciBurst {
                write,
                bytes,
                transactions,
            } => {
                let _ = write!(
                    out,
                    ",\"event\":\"pci_burst\",\"dir\":\"{}\",\"bytes\":{bytes},\"transactions\":{transactions}",
                    if write { "write" } else { "read" }
                );
            }
        },
        EventKind::FaultInjected { kind } => {
            let _ = write!(
                out,
                ",\"event\":\"fault_injected\",\"kind\":\"{}\"",
                kind.name()
            );
        }
        EventKind::FaultInert { kind } => {
            let _ = write!(
                out,
                ",\"event\":\"fault_inert\",\"kind\":\"{}\"",
                kind.name()
            );
        }
        EventKind::FaultRepair { kind } => {
            let _ = write!(
                out,
                ",\"event\":\"fault_repair\",\"kind\":\"{}\"",
                kind.name()
            );
        }
        EventKind::FaultFailed { job, algo } => {
            let _ = write!(
                out,
                ",\"event\":\"fault_failed\",\"job\":{job},\"algo\":{algo}"
            );
        }
        EventKind::Retry { job, attempt } => {
            let _ = write!(
                out,
                ",\"event\":\"retry\",\"job\":{job},\"attempt\":{attempt}"
            );
        }
        EventKind::WatchdogReset { job } => {
            let _ = write!(out, ",\"event\":\"watchdog_reset\",\"job\":{job}");
        }
        EventKind::Breaker { from, to } => {
            let _ = write!(
                out,
                ",\"event\":\"breaker\",\"from\":\"{}\",\"to\":\"{}\"",
                from.name(),
                to.name()
            );
        }
        EventKind::CardDown { card } => {
            let _ = write!(out, ",\"event\":\"card_down\",\"card\":{card}");
        }
        EventKind::CardUp { card } => {
            let _ = write!(out, ",\"event\":\"card_up\",\"card\":{card}");
        }
        EventKind::Failover {
            job,
            algo,
            from,
            to,
        } => {
            let _ = write!(
                out,
                ",\"event\":\"failover\",\"job\":{job},\"algo\":{algo},\"from\":{from},\"to\":{to}"
            );
        }
        EventKind::Hedge {
            job,
            algo,
            from,
            to,
        } => {
            let _ = write!(
                out,
                ",\"event\":\"hedge\",\"job\":{job},\"algo\":{algo},\"from\":{from},\"to\":{to}"
            );
        }
        EventKind::Prefetch { algo, shard } => {
            let _ = write!(
                out,
                ",\"event\":\"prefetch\",\"algo\":{algo},\"prefetch_shard\":{shard}"
            );
        }
        EventKind::Replicate { algo, card } => {
            let _ = write!(
                out,
                ",\"event\":\"replicate\",\"algo\":{algo},\"card\":{card}"
            );
        }
        EventKind::Evict { algo, card } => {
            let _ = write!(out, ",\"event\":\"evict\",\"algo\":{algo},\"card\":{card}");
        }
    }
    out.push('}');
}

fn chrome_record(out: &mut String, e: &TraceEvent) {
    use std::fmt::Write;
    let ts = chrome_ts(e.ts);
    let tid = e.shard;
    match e.kind {
        EventKind::JobOpen { job, algo } => {
            let _ = write!(
                out,
                "{{\"name\":\"job {job} (algo {algo})\",\"cat\":\"job\",\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
            );
        }
        EventKind::JobClose { job, algo, .. } => {
            let _ = write!(
                out,
                "{{\"name\":\"job {job} (algo {algo})\",\"cat\":\"job\",\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
            );
        }
        EventKind::StageOpen { stage, .. } => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}",
                stage.name()
            );
        }
        EventKind::StageClose { stage, .. } => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}",
                stage.name()
            );
        }
        _ => {
            // Everything else renders as a thread-scoped instant whose
            // name is the JSONL event name.
            let name = instant_name(&e.kind);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}"
            );
        }
    }
}

fn instant_name(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::Dispatch { .. } => "dispatch",
        EventKind::Steal { .. } => "steal",
        EventKind::Enqueue { .. } => "enqueue",
        EventKind::Dequeue { .. } => "dequeue",
        EventKind::Shed { .. } => "shed",
        EventKind::Bounced { .. } => "bounced",
        EventKind::Redistributed { .. } => "redistributed",
        EventKind::Requeued { .. } => "requeued",
        EventKind::Detail(d) => match d {
            DetailEvent::Residency { .. } => "residency",
            DetailEvent::DecodedCache { .. } => "decoded_cache",
            DetailEvent::Eviction { .. } => "eviction",
            DetailEvent::RomFetch { .. } => "rom_fetch",
            DetailEvent::Decompress { .. } => "decompress",
            DetailEvent::PortWrite { .. } => "port_write",
            DetailEvent::ConfigStall { .. } => "config_stall",
            DetailEvent::PciBurst { .. } => "pci_burst",
        },
        EventKind::FaultInjected { .. } => "fault_injected",
        EventKind::FaultInert { .. } => "fault_inert",
        EventKind::FaultRepair { .. } => "fault_repair",
        EventKind::FaultFailed { .. } => "fault_failed",
        EventKind::Retry { .. } => "retry",
        EventKind::WatchdogReset { .. } => "watchdog_reset",
        EventKind::Breaker { .. } => "breaker",
        EventKind::CardDown { .. } => "card_down",
        EventKind::CardUp { .. } => "card_up",
        EventKind::Failover { .. } => "failover",
        EventKind::Hedge { .. } => "hedge",
        EventKind::Prefetch { .. } => "prefetch",
        EventKind::Replicate { .. } => "replicate",
        EventKind::Evict { .. } => "evict",
        EventKind::JobOpen { .. }
        | EventKind::JobClose { .. }
        | EventKind::StageOpen { .. }
        | EventKind::StageClose { .. } => unreachable!("spans are not instants"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(capacity: usize) -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Full,
            capacity,
        }
    }

    #[test]
    fn off_records_nothing() {
        let mut t = Tracer::new(TraceConfig::off(), 0);
        t.record(SimTime::ZERO, EventKind::JobOpen { job: 0, algo: 1 });
        t.span(SimTime::ZERO, SimTime::from_ns(5), 0, Stage::Execute, 1);
        t.details(
            SimTime::ZERO,
            &[DetailEvent::Eviction { algo: 1, frames: 4 }],
        );
        let shard = t.finish();
        assert!(shard.events.is_empty());
        assert_eq!(shard.metrics, MetricsRegistry::default());
    }

    #[test]
    fn counters_level_updates_registry_without_storing() {
        let mut t = Tracer::new(TraceConfig::counters(), 3);
        t.record(SimTime::ZERO, EventKind::JobOpen { job: 7, algo: 2 });
        t.record(
            SimTime::from_ns(10),
            EventKind::JobClose {
                job: 7,
                algo: 2,
                outcome: JobOutcome::Completed,
                hit: true,
            },
        );
        let shard = t.finish();
        assert!(shard.events.is_empty());
        assert_eq!(shard.metrics.counters.jobs_opened, 1);
        assert_eq!(shard.metrics.counters.jobs_completed, 1);
        assert_eq!(shard.metrics.counters.jobs_hit, 1);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = Tracer::new(full(2), 0);
        for i in 0..5 {
            t.record(SimTime::from_ns(i), EventKind::Dequeue { job: i, algo: 1 });
        }
        let shard = t.finish();
        assert_eq!(shard.events.len(), 2);
        assert_eq!(shard.dropped, 3);
        assert_eq!(shard.events[0].seq, 3);
        assert_eq!(shard.events[1].seq, 4);
        assert_eq!(shard.metrics.counters.dequeued, 5);
    }

    #[test]
    fn span_skips_zero_durations_and_feeds_histograms() {
        let mut t = Tracer::new(full(64), 0);
        t.span(SimTime::ZERO, SimTime::ZERO, 0, Stage::RomFetch, 9);
        t.span(SimTime::ZERO, SimTime::from_ns(4), 0, Stage::Reconfig, 9);
        t.span(
            SimTime::from_ns(4),
            SimTime::from_ns(6),
            0,
            Stage::Execute,
            9,
        );
        let shard = t.finish();
        assert_eq!(shard.events.len(), 4);
        assert!(!shard.metrics.stage_time.contains_key(&Stage::RomFetch));
        assert_eq!(shard.metrics.algo_reconfig[&9].total(), SimTime::from_ns(4));
        assert_eq!(shard.metrics.algo_exec[&9].mean(), SimTime::from_ns(6));
    }

    #[test]
    fn time_hist_summaries() {
        let mut h = TimeHist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.quantile(0.5), SimTime::ZERO);
        for ns in [30u64, 10, 20] {
            h.push(SimTime::from_ns(ns));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.total(), SimTime::from_ns(60));
        assert_eq!(h.min(), SimTime::from_ns(10));
        assert_eq!(h.max(), SimTime::from_ns(30));
        assert_eq!(h.mean(), SimTime::from_ns(20));
        assert_eq!(h.quantile(0.5), SimTime::from_ns(20));
        assert_eq!(h.quantile(1.0), SimTime::from_ns(30));
        let mut other = TimeHist::default();
        other.push(SimTime::from_ns(40));
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), SimTime::from_ns(40));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn time_hist_rejects_out_of_range_quantile() {
        TimeHist::default().quantile(1.5);
    }

    #[test]
    fn assemble_orders_by_shard_then_seq() {
        let mut a = Tracer::new(full(8), 1);
        a.record(SimTime::from_ns(5), EventKind::Dequeue { job: 1, algo: 1 });
        let mut b = Tracer::new(full(8), 0);
        b.record(SimTime::from_ns(9), EventKind::Dequeue { job: 0, algo: 1 });
        let report = TraceReport::assemble(vec![a.finish(), b.finish()]);
        assert_eq!(report.events[0].shard, 0);
        assert_eq!(report.events[1].shard, 1);
        assert_eq!(report.metrics.counters.dequeued, 2);
    }

    #[test]
    fn jsonl_is_stable_and_one_line_per_event() {
        let mut t = Tracer::new(full(8), 2);
        t.record(SimTime::from_ns(1), EventKind::JobOpen { job: 4, algo: 40 });
        t.record(
            SimTime::from_ns(3),
            EventKind::Detail(DetailEvent::PciBurst {
                write: true,
                bytes: 64,
                transactions: 2,
            }),
        );
        let report = TraceReport::assemble(vec![t.finish()]);
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"shard\":2,\"seq\":0,\"ts_ps\":1000,\"event\":\"job_open\",\"job\":4,\"algo\":40}"
        );
        assert_eq!(
            lines[1],
            "{\"shard\":2,\"seq\":1,\"ts_ps\":3000,\"event\":\"pci_burst\",\"dir\":\"write\",\"bytes\":64,\"transactions\":2}"
        );
        // Byte-identical on re-export.
        assert_eq!(jsonl, report.to_jsonl());
    }

    #[test]
    fn chrome_trace_has_balanced_phases_and_fixed_point_ts() {
        let mut t = Tracer::new(full(16), 0);
        t.record(SimTime::ZERO, EventKind::JobOpen { job: 0, algo: 7 });
        t.span(SimTime::ZERO, SimTime::from_ns(1500), 0, Stage::Execute, 7);
        t.record(
            SimTime::from_ns(1500),
            EventKind::JobClose {
                job: 0,
                algo: 7,
                outcome: JobOutcome::Completed,
                hit: false,
            },
        );
        t.record(SimTime::from_ns(1500), EventKind::WatchdogReset { job: 0 });
        let report = TraceReport::assemble(vec![t.finish()]);
        let chrome = report.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}") || chrome.ends_with("\"}"));
        assert_eq!(chrome.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(chrome.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(chrome.matches("\"ph\":\"i\"").count(), 1);
        // 1500 ns = 1.5 us rendered as fixed-point "1.500000".
        assert!(chrome.contains("\"ts\":1.500000"));
    }

    #[test]
    fn detail_log_gates_pushes() {
        let mut log = DetailLog::new();
        log.push(DetailEvent::RomFetch { algo: 1, bytes: 10 });
        assert!(log.is_empty());
        log.set_enabled(true);
        log.push(DetailEvent::RomFetch { algo: 1, bytes: 10 });
        assert_eq!(log.len(), 1);
        let drained = log.take();
        assert_eq!(drained.len(), 1);
        assert!(log.is_empty());
        log.push(DetailEvent::RomFetch { algo: 2, bytes: 20 });
        log.set_enabled(false);
        assert!(log.is_empty());
    }

    #[test]
    fn detail_log_drain_into_reuses_buffer() {
        let mut log = DetailLog::new();
        log.set_enabled(true);
        log.push(DetailEvent::RomFetch { algo: 1, bytes: 10 });
        log.push(DetailEvent::RomFetch { algo: 2, bytes: 20 });
        let mut buf = Vec::with_capacity(8);
        log.drain_into(&mut buf);
        assert_eq!(buf.len(), 2);
        assert!(log.is_empty());
        let cap = buf.capacity();
        buf.clear();
        log.push(DetailEvent::RomFetch { algo: 3, bytes: 30 });
        log.drain_into(&mut buf);
        assert_eq!(buf, vec![DetailEvent::RomFetch { algo: 3, bytes: 30 }]);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn detail_log_drain_into_log_respects_dst_gate() {
        let mut src = DetailLog::new();
        src.set_enabled(true);
        src.push(DetailEvent::RomFetch { algo: 1, bytes: 10 });
        let mut dst = DetailLog::new();
        // disabled destination discards, matching `push`
        src.drain_into_log(&mut dst);
        assert!(src.is_empty());
        assert!(dst.is_empty());
        // enabled destination receives in order
        dst.set_enabled(true);
        src.push(DetailEvent::RomFetch { algo: 2, bytes: 20 });
        src.push(DetailEvent::RomFetch { algo: 3, bytes: 30 });
        src.drain_into_log(&mut dst);
        assert!(src.is_empty());
        assert_eq!(
            dst.take(),
            vec![
                DetailEvent::RomFetch { algo: 2, bytes: 20 },
                DetailEvent::RomFetch { algo: 3, bytes: 30 },
            ]
        );
    }

    #[test]
    fn breaker_trips_counted_from_closed_to_open() {
        let mut t = Tracer::new(TraceConfig::counters(), 0);
        t.record(
            SimTime::ZERO,
            EventKind::Breaker {
                from: BreakerPhase::Closed,
                to: BreakerPhase::Open,
            },
        );
        t.record(
            SimTime::from_ns(1),
            EventKind::Breaker {
                from: BreakerPhase::Open,
                to: BreakerPhase::HalfOpen,
            },
        );
        let shard = t.finish();
        assert_eq!(shard.metrics.counters.breaker_trips, 1);
        assert_eq!(shard.metrics.counters.breaker_transitions, 2);
    }

    #[test]
    fn empty_hist_is_all_zero() {
        let h = TimeHist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.total(), SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
        assert_eq!(h.max(), SimTime::ZERO);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.quantile(0.5), SimTime::ZERO);
        assert_eq!(h.quantile(1.0), SimTime::ZERO);
    }

    #[test]
    fn single_sample_hist_is_degenerate() {
        let mut h = TimeHist::default();
        h.push(SimTime::from_ns(42));
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), SimTime::from_ns(42));
        assert_eq!(h.max(), SimTime::from_ns(42));
        assert_eq!(h.mean(), SimTime::from_ns(42));
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), SimTime::from_ns(42));
        }
    }

    #[test]
    fn all_equal_hist_collapses_quantiles() {
        let mut h = TimeHist::default();
        for _ in 0..32 {
            h.push(SimTime::from_us(3));
        }
        assert_eq!(h.mean(), SimTime::from_us(3));
        assert_eq!(h.quantile(0.5), SimTime::from_us(3));
        assert_eq!(h.quantile(0.99), SimTime::from_us(3));
        assert_eq!(h.total(), SimTime::from_us(3) * 32);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn hist_quantile_out_of_range_panics() {
        TimeHist::default().quantile(-0.1);
    }

    #[test]
    fn hist_merge_appends_samples() {
        let mut a = TimeHist::default();
        a.push(SimTime::from_ns(10));
        let mut b = TimeHist::default();
        b.push(SimTime::from_ns(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimTime::from_ns(30));
        a.merge(&TimeHist::default());
        assert_eq!(a.count(), 2, "merging empty is identity");
    }
}

//! Request-stream generators for the co-processor experiments.
//!
//! The paper's host "requests the execution of a particular algorithm,
//! from a bank of algorithms" — the interesting system behaviour
//! (hit rates, evictions, agility payoff) depends entirely on the
//! *pattern* of those requests. This crate generates deterministic
//! request streams with the shapes the experiments need:
//!
//! * [`Workload::uniform`] — every algorithm equally likely,
//! * [`Workload::zipf`] — skewed popularity (realistic: a few hot
//!   ciphers, a long tail),
//! * [`Workload::round_robin`] — the worst case for any cache,
//! * [`Workload::phased`] — working-set shifts (an IPSec gateway
//!   renegotiating cipher suites),
//! * [`Workload::bursty`] — long runs of one algorithm,
//! * [`Workload::from_trace`] — replay an explicit id sequence.
//!
//! # Examples
//!
//! ```
//! use aaod_workload::Workload;
//!
//! let w = Workload::zipf(&[1, 2, 3, 4], 100, 1.1, 256, 42);
//! assert_eq!(w.len(), 100);
//! let trace = w.algo_trace(); // feed to BeladyPolicy
//! assert_eq!(trace.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aaod_sim::SplitMix64;

pub mod mixes;

/// One host request: which algorithm, on how many input bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Algorithm id to invoke.
    pub algo_id: u16,
    /// Input payload length in bytes.
    pub input_len: usize,
}

/// Zipf(s = 1) CDF over `len` ranks (rank 1 hottest).
fn zipf_cdf(len: usize) -> Vec<f64> {
    let weights: Vec<f64> = (1..=len).map(|rank| 1.0 / rank as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(len);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    cdf
}

/// Deterministic input payload for request number `index` of a
/// workload seeded with `seed`.
pub fn request_input(seed: u64, index: usize, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut buf = vec![0u8; len];
    rng.fill(&mut buf);
    buf
}

/// Per-tenant traffic contract for a multi-tenant stream: which
/// algorithms the tenant calls, how much traffic it offers, and what
/// the admission layer owes it (weight) or caps it at (quota).
///
/// Weights are integers so [`Workload`] stays `Eq`; only their ratios
/// matter to weighted-fair shedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant label (for experiment tables).
    pub name: String,
    /// The algorithms this tenant invokes (Zipf s = 1 within).
    pub algos: Vec<u16>,
    /// Weighted-fair entitlement under overload. Zero is treated as 1.
    pub weight: u32,
    /// Share of *offered* traffic, relative to the other tenants'
    /// `offered` values. A flooding tenant has `offered` far above
    /// its `weight`.
    pub offered: u32,
    /// Payload bytes per request.
    pub input_len: usize,
    /// Hard cap on jobs admitted for this tenant per engine run;
    /// beyond it jobs degrade to `QuotaExceeded`. `None` = unmetered.
    pub quota: Option<u64>,
}

/// A finite request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: String,
    seed: u64,
    requests: Vec<Request>,
    /// For a [`subset`](Workload::subset), the original index each
    /// request came from, so `input()` reproduces the source payload
    /// byte-for-byte. `None` for a freshly generated stream.
    source: Option<Vec<usize>>,
    /// Tenant index per request, for multi-tenant streams.
    tenant: Option<Vec<u16>>,
    /// The tenant contracts behind `tenant`, indexed by tenant id.
    specs: Option<Vec<TenantSpec>>,
    /// Arrival offset per request in *milli-interarrivals* (request
    /// `i` arrives at `interarrival × ticks[i] / 1000`), for streams
    /// with a shaped load curve. `None` = uniform open-loop spacing.
    ticks: Option<Vec<u64>>,
}

impl Workload {
    fn with_name(name: String, seed: u64, requests: Vec<Request>) -> Self {
        Workload {
            name,
            seed,
            requests,
            source: None,
            tenant: None,
            specs: None,
            ticks: None,
        }
    }

    /// Uniform-random algorithm choice.
    ///
    /// # Panics
    ///
    /// Panics if `algos` is empty.
    pub fn uniform(algos: &[u16], n: usize, input_len: usize, seed: u64) -> Self {
        assert!(!algos.is_empty(), "need at least one algorithm");
        let mut rng = SplitMix64::new(seed);
        let requests = (0..n)
            .map(|_| Request {
                algo_id: algos[rng.index(algos.len())],
                input_len,
            })
            .collect();
        Workload::with_name("uniform".into(), seed, requests)
    }

    /// Zipf-distributed popularity with exponent `s` (larger = more
    /// skewed). Rank 1 is the first algorithm in `algos`.
    ///
    /// # Panics
    ///
    /// Panics if `algos` is empty or `s` is not finite and positive.
    pub fn zipf(algos: &[u16], n: usize, s: f64, input_len: usize, seed: u64) -> Self {
        assert!(!algos.is_empty(), "need at least one algorithm");
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        let weights: Vec<f64> = (1..=algos.len())
            .map(|rank| 1.0 / (rank as f64).powf(s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let mut rng = SplitMix64::new(seed);
        let requests = (0..n)
            .map(|_| {
                let u = rng.next_f64();
                let idx = cdf.partition_point(|&c| c < u).min(algos.len() - 1);
                Request {
                    algo_id: algos[idx],
                    input_len,
                }
            })
            .collect();
        Workload::with_name(format!("zipf(s={s})"), seed, requests)
    }

    /// Strict rotation through `algos` — defeats every non-clairvoyant
    /// policy once the working set exceeds the device.
    ///
    /// # Panics
    ///
    /// Panics if `algos` is empty.
    pub fn round_robin(algos: &[u16], n: usize, input_len: usize) -> Self {
        assert!(!algos.is_empty(), "need at least one algorithm");
        let requests = (0..n)
            .map(|i| Request {
                algo_id: algos[i % algos.len()],
                input_len,
            })
            .collect();
        Workload::with_name("round-robin".into(), 0, requests)
    }

    /// Phased working sets: every `phase_len` requests, a fresh subset
    /// of `working_set` algorithms becomes the active set.
    ///
    /// # Panics
    ///
    /// Panics if `algos` is empty, or `working_set` is zero or larger
    /// than `algos`.
    pub fn phased(
        algos: &[u16],
        n: usize,
        phase_len: usize,
        working_set: usize,
        input_len: usize,
        seed: u64,
    ) -> Self {
        assert!(!algos.is_empty(), "need at least one algorithm");
        assert!(
            (1..=algos.len()).contains(&working_set),
            "working set must be within the algorithm list"
        );
        let phase_len = phase_len.max(1);
        let mut rng = SplitMix64::new(seed);
        let mut active: Vec<u16> = Vec::new();
        let mut requests = Vec::with_capacity(n);
        for i in 0..n {
            if i % phase_len == 0 || active.is_empty() {
                let mut pool = algos.to_vec();
                rng.shuffle(&mut pool);
                active = pool[..working_set].to_vec();
            }
            requests.push(Request {
                algo_id: active[rng.index(active.len())],
                input_len,
            });
        }
        Workload::with_name(
            format!("phased(ws={working_set},len={phase_len})"),
            seed,
            requests,
        )
    }

    /// Bursts: pick an algorithm, issue `burst_len` consecutive
    /// requests to it, repeat.
    ///
    /// # Panics
    ///
    /// Panics if `algos` is empty.
    pub fn bursty(algos: &[u16], n: usize, burst_len: usize, input_len: usize, seed: u64) -> Self {
        assert!(!algos.is_empty(), "need at least one algorithm");
        let burst_len = burst_len.max(1);
        let mut rng = SplitMix64::new(seed);
        let mut requests = Vec::with_capacity(n);
        while requests.len() < n {
            let algo = algos[rng.index(algos.len())];
            for _ in 0..burst_len.min(n - requests.len()) {
                requests.push(Request {
                    algo_id: algo,
                    input_len,
                });
            }
        }
        Workload::with_name(format!("bursty(len={burst_len})"), seed, requests)
    }

    /// Adversarial straggler mix for shard-dispatch experiments: the
    /// `hot` algorithm is drawn with probability `hot_share` at
    /// `hot_len` bytes, and the remainder is Zipf-distributed (s = 1)
    /// over the `cold` algorithms at `cold_len` bytes.
    ///
    /// Pair a compute-dense hot kernel on *small* payloads with cheap
    /// cold kernels on *large* payloads and every static policy
    /// straggles: `algo_id % N` pins the whole hot stream to one
    /// shard, while a byte-weighted balanced partition sees the hot
    /// algorithm's tiny byte share and concentrates it too — even
    /// though its modelled fabric time dominates the run.
    ///
    /// # Panics
    ///
    /// Panics if `cold` is empty or `hot_share` is outside `(0, 1)`.
    pub fn straggler(
        hot: u16,
        hot_len: usize,
        cold: &[u16],
        cold_len: usize,
        n: usize,
        hot_share: f64,
        seed: u64,
    ) -> Self {
        assert!(!cold.is_empty(), "need at least one cold algorithm");
        assert!(
            hot_share > 0.0 && hot_share < 1.0,
            "hot share must be in (0, 1)"
        );
        let weights: Vec<f64> = (1..=cold.len()).map(|rank| 1.0 / rank as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let mut rng = SplitMix64::new(seed);
        let requests = (0..n)
            .map(|_| {
                if rng.next_f64() < hot_share {
                    Request {
                        algo_id: hot,
                        input_len: hot_len,
                    }
                } else {
                    let u = rng.next_f64();
                    let idx = cdf.partition_point(|&c| c < u).min(cold.len() - 1);
                    Request {
                        algo_id: cold[idx],
                        input_len: cold_len,
                    }
                }
            })
            .collect();
        Workload::with_name(
            format!("straggler(hot={hot},share={hot_share})"),
            seed,
            requests,
        )
    }

    /// Multi-tenant fleet mix: each tenant is `(algos, weight,
    /// input_len)`. Every request first draws a tenant with
    /// probability proportional to its weight, then a Zipf(s = 1)
    /// algorithm within that tenant's list — so each tenant keeps a
    /// hot head and a cold tail, and the fleet interleaves them all.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, any tenant has no algorithms, or
    /// any weight is not finite and positive.
    pub fn tenants(tenants: &[(&[u16], f64, usize)], n: usize, seed: u64) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        let mut tenant_cdf = Vec::with_capacity(tenants.len());
        let mut total = 0.0;
        for (algos, weight, _) in tenants {
            assert!(
                !algos.is_empty(),
                "every tenant needs at least one algorithm"
            );
            assert!(
                weight.is_finite() && *weight > 0.0,
                "tenant weight must be positive"
            );
            total += weight;
        }
        let mut acc = 0.0;
        for (_, weight, _) in tenants {
            acc += weight / total;
            tenant_cdf.push(acc);
        }
        // Per-tenant Zipf(s = 1) CDFs over that tenant's algorithms.
        let algo_cdfs: Vec<Vec<f64>> = tenants
            .iter()
            .map(|(algos, _, _)| {
                let weights: Vec<f64> = (1..=algos.len()).map(|rank| 1.0 / rank as f64).collect();
                let total: f64 = weights.iter().sum();
                let mut cdf = Vec::with_capacity(weights.len());
                let mut acc = 0.0;
                for w in &weights {
                    acc += w / total;
                    cdf.push(acc);
                }
                cdf
            })
            .collect();
        let mut rng = SplitMix64::new(seed);
        let mut tenant_of = Vec::with_capacity(n);
        let requests = (0..n)
            .map(|_| {
                let u = rng.next_f64();
                let t = tenant_cdf
                    .partition_point(|&c| c < u)
                    .min(tenants.len() - 1);
                tenant_of.push(t as u16);
                let (algos, _, input_len) = tenants[t];
                let v = rng.next_f64();
                let idx = algo_cdfs[t]
                    .partition_point(|&c| c < v)
                    .min(algos.len() - 1);
                Request {
                    algo_id: algos[idx],
                    input_len,
                }
            })
            .collect();
        let specs = tenants
            .iter()
            .enumerate()
            .map(|(i, (algos, weight, input_len))| TenantSpec {
                name: format!("t{i}"),
                algos: algos.to_vec(),
                // weights only matter by ratio; scale to keep Eq
                weight: ((weight * 1000.0).round() as u32).max(1),
                offered: ((weight * 1000.0).round() as u32).max(1),
                input_len: *input_len,
                quota: None,
            })
            .collect();
        let mut w = Workload::with_name(format!("tenants(k={})", tenants.len()), seed, requests);
        w.tenant = Some(tenant_of);
        w.specs = Some(specs);
        w
    }

    /// Multi-tenant mix driven by explicit [`TenantSpec`] contracts:
    /// every request draws a tenant with probability proportional to
    /// its `offered` share, then a Zipf(s = 1) algorithm within the
    /// tenant's list at the tenant's `input_len`. The resulting
    /// stream carries tenant ids and the specs themselves, so the
    /// engine's weighted-fair admission and per-tenant quotas can act
    /// on it — and [`subset`](Workload::subset) preserves both, so
    /// per-tenant accounting survives cluster partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, any tenant has no algorithms, or
    /// every `offered` share is zero.
    pub fn multi_tenant(specs: &[TenantSpec], n: usize, seed: u64) -> Self {
        assert!(!specs.is_empty(), "need at least one tenant");
        let total: u64 = specs.iter().map(|s| s.offered as u64).sum();
        assert!(total > 0, "at least one tenant must offer traffic");
        for s in specs {
            assert!(
                !s.algos.is_empty(),
                "every tenant needs at least one algorithm"
            );
        }
        let mut tenant_cdf = Vec::with_capacity(specs.len());
        let mut acc = 0u64;
        for s in specs {
            acc += s.offered as u64;
            tenant_cdf.push(acc);
        }
        let algo_cdfs: Vec<Vec<f64>> = specs.iter().map(|s| zipf_cdf(s.algos.len())).collect();
        let mut rng = SplitMix64::new(seed);
        let mut tenant_of = Vec::with_capacity(n);
        let requests = (0..n)
            .map(|_| {
                let u = (rng.next_f64() * total as f64) as u64;
                let t = tenant_cdf.partition_point(|&c| c <= u).min(specs.len() - 1);
                tenant_of.push(t as u16);
                let v = rng.next_f64();
                let idx = algo_cdfs[t]
                    .partition_point(|&c| c < v)
                    .min(specs[t].algos.len() - 1);
                Request {
                    algo_id: specs[t].algos[idx],
                    input_len: specs[t].input_len,
                }
            })
            .collect();
        let mut w = Workload::with_name(format!("multi-tenant(k={})", specs.len()), seed, requests);
        w.tenant = Some(tenant_of);
        w.specs = Some(specs.to_vec());
        w
    }

    /// Diurnal load curve: a deterministic triangle wave modulates the
    /// open-loop arrival gap between a peak (gap `g/ratio`) and a
    /// trough (gap `g`), repeating `periods` times over the stream,
    /// with the mean gap normalised to one interarrival. Algorithms
    /// are Zipf(s = 1) over `algos`. The curve is carried as
    /// [`arrival_tick`](Workload::arrival_tick) offsets, which the
    /// engine's overload layer replays instead of uniform spacing.
    ///
    /// # Panics
    ///
    /// Panics if `algos` is empty, `periods` is zero, or
    /// `peak_to_trough < 2`.
    pub fn diurnal(
        algos: &[u16],
        n: usize,
        periods: u32,
        peak_to_trough: u32,
        input_len: usize,
        seed: u64,
    ) -> Self {
        assert!(!algos.is_empty(), "need at least one algorithm");
        assert!(periods >= 1, "need at least one period");
        assert!(peak_to_trough >= 2, "peak:trough ratio must be >= 2");
        let ratio = peak_to_trough as u64;
        // trough gap g_max and peak gap g_max/ratio with the *mean*
        // gap pinned to 1000 milliticks: (g_min + g_max)/2 = 1000
        let g_max = 2000 * ratio / (ratio + 1);
        let g_min = g_max / ratio;
        let cdf = zipf_cdf(algos.len());
        let mut rng = SplitMix64::new(seed);
        let mut ticks = Vec::with_capacity(n);
        let mut now = 0u64;
        let requests = (0..n)
            .map(|i| {
                ticks.push(now);
                // triangle phase in [0, 1000]: 0 = peak, 1000 = trough
                let span = (n as u64).max(1);
                let ph = (i as u64 * periods as u64 * 2000) / span % 2000;
                let tri = if ph < 1000 { ph } else { 2000 - ph };
                now += g_min + (g_max - g_min) * tri / 1000;
                let u = rng.next_f64();
                let idx = cdf.partition_point(|&c| c < u).min(algos.len() - 1);
                Request {
                    algo_id: algos[idx],
                    input_len,
                }
            })
            .collect();
        let mut w = Workload::with_name(
            format!("diurnal(p={periods},ratio={peak_to_trough})"),
            seed,
            requests,
        );
        w.ticks = Some(ticks);
        w
    }

    /// Flash crowd: a Zipf(s = 1) baseline over `algos`, except that
    /// in the middle third of the stream the `hot` algorithm spikes —
    /// it is drawn with probability 0.9 and the arrival gap shrinks
    /// by `spike_mult` (10–50× is the interesting range). The spike
    /// is carried in both the algorithm choice and the
    /// [`arrival_tick`](Workload::arrival_tick) curve.
    ///
    /// # Panics
    ///
    /// Panics if `algos` is empty or `spike_mult < 2`.
    pub fn flash_crowd(
        algos: &[u16],
        hot: u16,
        n: usize,
        spike_mult: u32,
        input_len: usize,
        seed: u64,
    ) -> Self {
        assert!(!algos.is_empty(), "need at least one algorithm");
        assert!(spike_mult >= 2, "spike multiplier must be >= 2");
        let cdf = zipf_cdf(algos.len());
        let mut rng = SplitMix64::new(seed);
        let mut ticks = Vec::with_capacity(n);
        let mut now = 0u64;
        let requests = (0..n)
            .map(|i| {
                ticks.push(now);
                let in_spike = (n / 3..2 * n / 3).contains(&i);
                now += if in_spike {
                    (1000 / spike_mult as u64).max(1)
                } else {
                    1000
                };
                let algo_id = if in_spike && rng.next_f64() < 0.9 {
                    hot
                } else {
                    let u = rng.next_f64();
                    algos[cdf.partition_point(|&c| c < u).min(algos.len() - 1)]
                };
                Request { algo_id, input_len }
            })
            .collect();
        let mut w = Workload::with_name(
            format!("flash-crowd(hot={hot},x{spike_mult})"),
            seed,
            requests,
        );
        w.ticks = Some(ticks);
        w
    }

    /// Replays an explicit id trace with a fixed input length.
    pub fn from_trace<I: IntoIterator<Item = u16>>(trace: I, input_len: usize) -> Self {
        let requests = trace
            .into_iter()
            .map(|algo_id| Request { algo_id, input_len })
            .collect();
        Workload::with_name("trace".into(), 0, requests)
    }

    /// The workload's descriptive name (for experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The seed the stream was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests in order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Just the algorithm ids, in order — the trace a
    /// Belady oracle needs.
    pub fn algo_trace(&self) -> Vec<u16> {
        self.requests.iter().map(|r| r.algo_id).collect()
    }

    /// Deterministic input payload for request `index`. For a
    /// [`subset`](Workload::subset) this is the payload of the
    /// *original* request, so a job carries identical bytes no matter
    /// which derived stream serves it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn input(&self, index: usize) -> Vec<u8> {
        let r = self.requests[index];
        request_input(self.seed, self.source_index(index), r.input_len)
    }

    /// The index this request had in the original (pre-subset)
    /// stream. Identity for a freshly generated workload.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn source_index(&self, index: usize) -> usize {
        match &self.source {
            Some(map) => map[index],
            None => {
                assert!(index < self.requests.len(), "request index out of range");
                index
            }
        }
    }

    /// A derived workload containing the picked requests, in the
    /// given order, that still reproduces the original payload bytes:
    /// `subset.input(k) == self.input(indices[k])`. Subsetting a
    /// subset composes through to the root stream.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let requests = indices.iter().map(|&i| self.requests[i]).collect();
        let source = indices.iter().map(|&i| self.source_index(i)).collect();
        // Tenant ids and arrival ticks travel with the picked
        // requests, so per-tenant stats and the load curve survive
        // cluster partitioning.
        let tenant = self
            .tenant
            .as_ref()
            .map(|t| indices.iter().map(|&i| t[i]).collect());
        let ticks = self
            .ticks
            .as_ref()
            .map(|t| indices.iter().map(|&i| t[i]).collect());
        Workload {
            name: format!("{}[{}]", self.name, indices.len()),
            seed: self.seed,
            requests,
            source: Some(source),
            tenant,
            specs: self.specs.clone(),
            ticks,
        }
    }

    /// The tenant behind request `index`, for multi-tenant streams.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range on a multi-tenant stream.
    pub fn tenant_of(&self, index: usize) -> Option<u16> {
        self.tenant.as_ref().map(|t| t[index])
    }

    /// The tenant contracts behind a multi-tenant stream, indexed by
    /// the ids [`tenant_of`](Workload::tenant_of) returns.
    pub fn tenant_specs(&self) -> Option<&[TenantSpec]> {
        self.specs.as_deref()
    }

    /// Arrival offset of request `index` in milli-interarrivals
    /// (request `i` arrives at `interarrival × tick / 1000`), for
    /// streams with a shaped load curve ([`diurnal`](Workload::diurnal),
    /// [`flash_crowd`](Workload::flash_crowd)). `None` means uniform
    /// open-loop spacing (`interarrival × i`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range on a shaped stream.
    pub fn arrival_tick(&self, index: usize) -> Option<u64> {
        self.ticks.as_ref().map(|t| t[index])
    }

    /// The arrival stream an online predictor consumes: every request
    /// as `(index, algo_id, tick)` in submission order, where `tick`
    /// is the shaped [`arrival_tick`](Workload::arrival_tick) when the
    /// stream carries a load curve and the uniform open-loop offset
    /// `index × 1000` milli-interarrivals otherwise — so consumers see
    /// one continuous timebase regardless of how the stream was
    /// generated.
    pub fn arrivals(&self) -> impl Iterator<Item = (usize, u16, u64)> + '_ {
        self.requests.iter().enumerate().map(|(i, r)| {
            let tick = self.arrival_tick(i).unwrap_or(i as u64 * 1000);
            (i, r.algo_id, tick)
        })
    }

    /// Distinct algorithms referenced, sorted.
    pub fn distinct_algos(&self) -> Vec<u16> {
        let mut ids = self.algo_trace();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALGOS: [u16; 5] = [1, 2, 3, 4, 5];

    #[test]
    fn generators_produce_n_requests() {
        assert_eq!(Workload::uniform(&ALGOS, 50, 8, 1).len(), 50);
        assert_eq!(Workload::zipf(&ALGOS, 50, 1.0, 8, 1).len(), 50);
        assert_eq!(Workload::round_robin(&ALGOS, 50, 8).len(), 50);
        assert_eq!(Workload::phased(&ALGOS, 50, 10, 2, 8, 1).len(), 50);
        assert_eq!(Workload::bursty(&ALGOS, 50, 7, 8, 1).len(), 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::zipf(&ALGOS, 200, 1.2, 16, 9);
        let b = Workload::zipf(&ALGOS, 200, 1.2, 16, 9);
        assert_eq!(a, b);
        let c = Workload::zipf(&ALGOS, 200, 1.2, 16, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_is_skewed_toward_rank_one() {
        let w = Workload::zipf(&ALGOS, 10_000, 1.5, 8, 3);
        let count_1 = w.algo_trace().iter().filter(|&&a| a == 1).count();
        let count_5 = w.algo_trace().iter().filter(|&&a| a == 5).count();
        assert!(
            count_1 > count_5 * 3,
            "rank 1: {count_1}, rank 5: {count_5}"
        );
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let w = Workload::uniform(&ALGOS, 10_000, 8, 4);
        for &a in &ALGOS {
            let count = w.algo_trace().iter().filter(|&&x| x == a).count();
            assert!((1600..2400).contains(&count), "algo {a}: {count}");
        }
    }

    #[test]
    fn round_robin_cycles() {
        let w = Workload::round_robin(&[7, 8], 5, 4);
        assert_eq!(w.algo_trace(), vec![7, 8, 7, 8, 7]);
    }

    #[test]
    fn bursty_has_runs() {
        let w = Workload::bursty(&ALGOS, 100, 10, 4, 5);
        let trace = w.algo_trace();
        assert!(trace[..10].iter().all(|&a| a == trace[0]));
    }

    #[test]
    fn phased_uses_small_working_set_within_phase() {
        let w = Workload::phased(&ALGOS, 100, 25, 2, 4, 6);
        let trace = w.algo_trace();
        for phase in trace.chunks(25) {
            let mut distinct = phase.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(distinct.len() <= 2, "phase used {distinct:?}");
        }
    }

    #[test]
    fn straggler_mix_is_hot_dominated_and_deterministic() {
        let w = Workload::straggler(9, 64, &[1, 2, 3], 1500, 4_000, 0.5, 11);
        assert_eq!(w.len(), 4_000);
        let hot = w.algo_trace().iter().filter(|&&a| a == 9).count();
        assert!((1700..2300).contains(&hot), "hot count {hot}");
        for r in w.requests() {
            if r.algo_id == 9 {
                assert_eq!(r.input_len, 64);
            } else {
                assert_eq!(r.input_len, 1500);
            }
        }
        // cold tail is Zipf-skewed toward its first rank
        let c1 = w.algo_trace().iter().filter(|&&a| a == 1).count();
        let c3 = w.algo_trace().iter().filter(|&&a| a == 3).count();
        assert!(c1 > c3, "rank 1: {c1}, rank 3: {c3}");
        assert_eq!(
            w,
            Workload::straggler(9, 64, &[1, 2, 3], 1500, 4_000, 0.5, 11)
        );
    }

    #[test]
    #[should_panic(expected = "hot share")]
    fn straggler_rejects_degenerate_share() {
        let _ = Workload::straggler(9, 64, &[1], 256, 10, 1.0, 0);
    }

    #[test]
    fn trace_replay_and_inputs() {
        let w = Workload::from_trace([9u16, 9, 3], 5);
        assert_eq!(w.algo_trace(), vec![9, 9, 3]);
        assert_eq!(w.input(0).len(), 5);
        assert_eq!(w.input(0), w.input(0));
        assert_ne!(w.input(0), w.input(1));
        assert_eq!(w.distinct_algos(), vec![3, 9]);
    }

    #[test]
    fn subset_preserves_source_payloads() {
        let w = Workload::zipf(&ALGOS, 40, 1.1, 16, 7);
        let picked = [3usize, 17, 5, 39];
        let s = w.subset(&picked);
        assert_eq!(s.len(), picked.len());
        for (k, &i) in picked.iter().enumerate() {
            assert_eq!(s.requests()[k], w.requests()[i]);
            assert_eq!(s.input(k), w.input(i), "payload drifted at slot {k}");
            assert_eq!(s.source_index(k), i);
        }
        // Subsetting a subset composes through to the root stream.
        let nested = s.subset(&[2, 0]);
        assert_eq!(nested.input(0), w.input(5));
        assert_eq!(nested.source_index(1), 3);
    }

    #[test]
    fn tenants_mix_weights_and_lengths() {
        let spec: [(&[u16], f64, usize); 3] =
            [(&[1, 2], 6.0, 64), (&[3, 4], 3.0, 256), (&[5], 1.0, 1024)];
        let w = Workload::tenants(&spec, 10_000, 13);
        assert_eq!(w.len(), 10_000);
        assert_eq!(w, Workload::tenants(&spec, 10_000, 13));
        let mut counts = [0usize; 3];
        for r in w.requests() {
            let t = match r.algo_id {
                1 | 2 => 0,
                3 | 4 => 1,
                _ => 2,
            };
            counts[t] += 1;
            assert_eq!(r.input_len, spec[t].2);
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        // Zipf head within the first tenant.
        let c1 = w.algo_trace().iter().filter(|&&a| a == 1).count();
        let c2 = w.algo_trace().iter().filter(|&&a| a == 2).count();
        assert!(c1 > c2, "rank 1: {c1}, rank 2: {c2}");
    }

    fn demo_specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "gw".into(),
                algos: vec![1, 2],
                weight: 4,
                offered: 1,
                input_len: 64,
                quota: None,
            },
            TenantSpec {
                name: "tm".into(),
                algos: vec![3, 4],
                weight: 2,
                offered: 1,
                input_len: 256,
                quota: Some(100),
            },
            TenantSpec {
                name: "flood".into(),
                algos: vec![5],
                weight: 1,
                offered: 8,
                input_len: 1024,
                quota: None,
            },
        ]
    }

    #[test]
    fn multi_tenant_follows_offered_shares_and_records_ids() {
        let specs = demo_specs();
        let w = Workload::multi_tenant(&specs, 10_000, 21);
        assert_eq!(w, Workload::multi_tenant(&specs, 10_000, 21));
        assert_eq!(w.tenant_specs().unwrap(), &specs[..]);
        let mut counts = [0usize; 3];
        for i in 0..w.len() {
            let t = w.tenant_of(i).unwrap() as usize;
            counts[t] += 1;
            assert!(specs[t].algos.contains(&w.requests()[i].algo_id));
            assert_eq!(w.requests()[i].input_len, specs[t].input_len);
        }
        // offered 1:1:8 — the flooder dominates despite its low weight
        assert!(counts[2] > 5 * counts[0], "{counts:?}");
        assert!(counts[2] > 5 * counts[1], "{counts:?}");
    }

    #[test]
    fn subset_carries_tenants_specs_and_ticks() {
        let w = Workload::multi_tenant(&demo_specs(), 200, 5);
        let picked = [7usize, 0, 150, 42];
        let s = w.subset(&picked);
        assert_eq!(s.tenant_specs(), w.tenant_specs());
        for (k, &i) in picked.iter().enumerate() {
            assert_eq!(s.tenant_of(k), w.tenant_of(i), "tenant lost at slot {k}");
            assert_eq!(s.input(k), w.input(i));
        }
        // nested subsets keep composing
        let nested = s.subset(&[3, 1]);
        assert_eq!(nested.tenant_of(0), w.tenant_of(42));
        // ...and arrival curves survive partitioning too
        let d = Workload::diurnal(&ALGOS, 100, 2, 4, 64, 9);
        let ds = d.subset(&[10, 90]);
        assert_eq!(ds.arrival_tick(0), d.arrival_tick(10));
        assert_eq!(ds.arrival_tick(1), d.arrival_tick(90));
        // legacy tenants() streams now carry ids through subsets as well
        let spec: [(&[u16], f64, usize); 2] = [(&[1, 2], 3.0, 64), (&[3], 1.0, 256)];
        let t = Workload::tenants(&spec, 50, 3);
        let ts = t.subset(&[5, 6]);
        assert_eq!(ts.tenant_of(0), t.tenant_of(5));
        assert!(t.tenant_specs().is_some());
    }

    #[test]
    fn diurnal_curve_is_mean_normalised_and_shaped() {
        let n = 4000;
        let w = Workload::diurnal(&ALGOS, n, 4, 8, 64, 17);
        assert_eq!(w, Workload::diurnal(&ALGOS, n, 4, 8, 64, 17));
        // ticks strictly increase and the mean gap is ~1000 milliticks
        let last = w.arrival_tick(n - 1).unwrap();
        for i in 1..n {
            assert!(w.arrival_tick(i).unwrap() > w.arrival_tick(i - 1).unwrap());
        }
        let mean = last / (n as u64 - 1);
        assert!((900..=1100).contains(&mean), "mean gap {mean}");
        // the peak must be markedly denser than the trough: compare
        // the tightest and widest 100-request windows
        let gaps: Vec<u64> = (1..n)
            .map(|i| w.arrival_tick(i).unwrap() - w.arrival_tick(i - 1).unwrap())
            .collect();
        let min_gap = *gaps.iter().min().unwrap();
        let max_gap = *gaps.iter().max().unwrap();
        assert!(max_gap >= 4 * min_gap, "min {min_gap}, max {max_gap}");
    }

    #[test]
    fn flash_crowd_spikes_hot_algo_and_arrival_rate() {
        let n = 3000;
        let w = Workload::flash_crowd(&ALGOS, 5, n, 20, 64, 23);
        assert_eq!(w, Workload::flash_crowd(&ALGOS, 5, n, 20, 64, 23));
        let trace = w.algo_trace();
        let hot_in_spike = trace[n / 3..2 * n / 3].iter().filter(|&&a| a == 5).count();
        let hot_outside = trace[..n / 3].iter().filter(|&&a| a == 5).count();
        assert!(
            hot_in_spike > n / 3 * 8 / 10,
            "hot in spike: {hot_in_spike}"
        );
        assert!(hot_outside < n / 6, "hot outside: {hot_outside}");
        // spike gaps are 20x tighter
        let pre = w.arrival_tick(1).unwrap() - w.arrival_tick(0).unwrap();
        let mid = w.arrival_tick(n / 2 + 1).unwrap() - w.arrival_tick(n / 2).unwrap();
        assert_eq!(pre, 1000);
        assert_eq!(mid, 50);
    }

    #[test]
    #[should_panic(expected = "spike multiplier")]
    fn flash_crowd_rejects_degenerate_spike() {
        let _ = Workload::flash_crowd(&ALGOS, 1, 10, 1, 8, 0);
    }

    #[test]
    #[should_panic(expected = "tenant weight")]
    fn tenants_reject_bad_weight() {
        let _ = Workload::tenants(&[(&[1u16][..], 0.0, 8)], 10, 0);
    }

    #[test]
    #[should_panic(expected = "at least one algorithm")]
    fn empty_algos_panics() {
        let _ = Workload::uniform(&[], 10, 8, 0);
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn bad_working_set_panics() {
        let _ = Workload::phased(&ALGOS, 10, 5, 9, 8, 0);
    }
}

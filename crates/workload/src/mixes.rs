//! Standard algorithm mixes and realistic per-algorithm input sizes.
//!
//! The experiments repeatedly need "the crypto subset of the bank" or
//! "everything", and a plausible payload size per kernel (an IPSec
//! packet for ciphers/hashes, a sample window for the FIR, …).

use crate::Workload;
use aaod_algos::ids;

/// The crypto subset — the paper's motivating IPSec-style bank.
pub fn crypto_mix() -> Vec<u16> {
    vec![
        ids::AES128,
        ids::TDES,
        ids::XTEA,
        ids::SHA1,
        ids::SHA256,
        ids::HMAC_SHA1,
        ids::CRC32,
    ]
}

/// Every algorithm in the standard bank.
pub fn full_bank() -> Vec<u16> {
    ids::ALL.to_vec()
}

/// The small netlist-backed functions.
pub fn netlist_mix() -> Vec<u16> {
    vec![ids::CRC8, ids::ADDER8, ids::POPCNT8, ids::PARITY8]
}

/// The canonical adversarial straggler scenario for shard-dispatch
/// experiments (E15): SHA-1 — 80 fabric cycles per 64-byte block, the
/// most compute-dense kernel in the bank — is the hot algorithm on
/// *small* 256-byte digests (60% of traffic), while CRC-32 and XTEA
/// stream *large* 1500-byte packets at a fraction of a cycle per byte.
///
/// Byte-weighted static partitions see SHA-1's tiny byte share and
/// concentrate the whole hot stream on one shard even though its
/// modelled fabric time dominates the run; `algo_id % N` pins it to
/// one shard by construction. A cycle-aware dynamic dispatch spreads
/// it and wins on makespan.
pub fn straggler_workload(n: usize, seed: u64) -> Workload {
    Workload::straggler(
        ids::SHA1,
        256,
        &[ids::CRC32, ids::XTEA, ids::CRC8],
        1500,
        n,
        0.6,
        seed,
    )
}

/// A realistic input length for one invocation of `algo_id`
/// (an Ethernet-MTU packet for packet-processing kernels, a filter
/// window for DSP, one matrix pair for the multiplier).
pub fn default_input_len(algo_id: u16) -> usize {
    match algo_id {
        ids::AES128 => 1504, // packet padded to 16
        ids::XTEA => 1504,
        ids::SHA1 => 1500,
        ids::SHA256 => 1500,
        ids::CRC32 => 1500,
        ids::FIR => 1024,     // 512 i16 samples
        ids::MATMUL8 => 1280, // 10 matrix pairs
        ids::CRC8 => 256,
        ids::ADDER8 => 256,
        ids::POPCNT8 => 256,
        ids::PARITY8 => 256,
        ids::TDES => 1504,
        ids::HMAC_SHA1 => 1500,
        _ => 256,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_subsets_of_the_bank() {
        for id in crypto_mix().into_iter().chain(netlist_mix()) {
            assert!(full_bank().contains(&id));
        }
    }

    #[test]
    fn input_lengths_respect_block_shapes() {
        assert_eq!(default_input_len(ids::AES128) % 16, 0);
        assert_eq!(default_input_len(ids::XTEA) % 8, 0);
        assert_eq!(default_input_len(ids::FIR) % 2, 0);
        assert_eq!(default_input_len(ids::MATMUL8) % 128, 0);
        assert!(default_input_len(9999) > 0);
    }

    #[test]
    fn mixes_have_no_duplicates_and_do_not_overlap() {
        for mix in [crypto_mix(), netlist_mix(), full_bank()] {
            let unique: std::collections::BTreeSet<u16> = mix.iter().copied().collect();
            assert_eq!(unique.len(), mix.len(), "duplicate id in mix");
        }
        for id in netlist_mix() {
            assert!(
                !crypto_mix().contains(&id),
                "netlist and crypto mixes must be disjoint"
            );
        }
    }

    #[test]
    fn straggler_workload_shape() {
        let w = straggler_workload(1000, 42);
        assert_eq!(w.len(), 1000);
        // four algorithms: fits a default shard, so dynamic dispatch
        // may replicate every algorithm on every shard without
        // serving-time reconfigurations
        assert_eq!(w.distinct_algos().len(), 4);
        let hot = w.algo_trace().iter().filter(|&&a| a == ids::SHA1).count();
        assert!((500..700).contains(&hot), "hot count {hot}");
    }

    #[test]
    fn every_bank_algorithm_has_a_positive_input_len() {
        for id in full_bank() {
            assert!(default_input_len(id) > 0, "algo {id} has no input length");
        }
        // block ciphers must get block-aligned payloads
        assert_eq!(default_input_len(ids::TDES) % 8, 0);
    }
}

//! Standard algorithm mixes and realistic per-algorithm input sizes.
//!
//! The experiments repeatedly need "the crypto subset of the bank" or
//! "everything", and a plausible payload size per kernel (an IPSec
//! packet for ciphers/hashes, a sample window for the FIR, …).

use crate::{TenantSpec, Workload};
use aaod_algos::crypto::Sha1;
use aaod_algos::{ids, AlgorithmBank, AliasKernel};
use std::sync::Arc;

/// The crypto subset — the paper's motivating IPSec-style bank.
pub fn crypto_mix() -> Vec<u16> {
    vec![
        ids::AES128,
        ids::TDES,
        ids::XTEA,
        ids::SHA1,
        ids::SHA256,
        ids::HMAC_SHA1,
        ids::CRC32,
    ]
}

/// Every algorithm in the standard bank.
pub fn full_bank() -> Vec<u16> {
    ids::ALL.to_vec()
}

/// The small netlist-backed functions.
pub fn netlist_mix() -> Vec<u16> {
    vec![ids::CRC8, ids::ADDER8, ids::POPCNT8, ids::PARITY8]
}

/// The canonical adversarial straggler scenario for shard-dispatch
/// experiments (E15): SHA-1 — 80 fabric cycles per 64-byte block, the
/// most compute-dense kernel in the bank — is the hot algorithm on
/// *small* 256-byte digests (60% of traffic), while CRC-32 and XTEA
/// stream *large* 1500-byte packets at a fraction of a cycle per byte.
///
/// Byte-weighted static partitions see SHA-1's tiny byte share and
/// concentrate the whole hot stream on one shard even though its
/// modelled fabric time dominates the run; `algo_id % N` pins it to
/// one shard by construction. A cycle-aware dynamic dispatch spreads
/// it and wins on makespan.
pub fn straggler_workload(n: usize, seed: u64) -> Workload {
    Workload::straggler(
        ids::SHA1,
        256,
        &[ids::CRC32, ids::XTEA, ids::CRC8],
        1500,
        n,
        0.6,
        seed,
    )
}

/// The id [`dedup_bank`] registers its SHA-1 alias under.
pub const SHA1_ALIAS: u16 = 100;

/// The standard bank plus a SHA-1 alias ([`SHA1_ALIAS`]): the same IP
/// core published under two algorithm ids. Every configuration frame
/// of the alias except the descriptor frame is byte-identical to
/// SHA-1's (11 of 12 frames, ~92% shared — far past the 30% a
/// content-addressed frame store needs to pay off).
pub fn dedup_bank() -> AlgorithmBank {
    let mut bank = AlgorithmBank::standard();
    bank.register(Arc::new(AliasKernel::new(
        SHA1_ALIAS,
        "sha1-alias",
        Arc::new(Sha1),
    )));
    bank
}

/// The dedup-heavy algorithm mix (E17): SHA-1 and its alias share
/// ~92% of their frames, and the seven-algorithm working set needs 102
/// frames on a 96-frame device, so the replacement policy keeps
/// evicting and every re-configuration re-ships frames the store
/// already holds.
pub fn dedup_mix() -> Vec<u16> {
    vec![
        ids::SHA1,
        SHA1_ALIAS,
        ids::AES128,
        ids::SHA256,
        ids::TDES,
        ids::HMAC_SHA1,
        ids::XTEA,
    ]
}

/// The canonical dedup-heavy workload over [`dedup_mix`]: bursts of 8
/// same-algorithm requests (so miss batching still works) cycling
/// through an overcommitted working set. Serve it from [`dedup_bank`].
pub fn dedup_workload(n: usize, seed: u64) -> Workload {
    Workload::bursty(&dedup_mix(), n, 8, 256, seed)
}

/// The canonical multi-tenant fleet workload (E18): three tenants
/// sharing a cluster. An IPSec gateway dominates traffic with the
/// crypto mix on MTU-sized packets, a telemetry service hashes small
/// records, and a batch DSP tenant trickles in large filter windows.
/// Tenant heads (AES-128, SHA-1, FIR) are hot fleet-wide and worth
/// replicating on several cards; the tails stay cold and
/// single-resident.
pub fn fleet_workload(n: usize, seed: u64) -> Workload {
    let gateway = [ids::AES128, ids::TDES, ids::HMAC_SHA1, ids::XTEA];
    let telemetry = [ids::SHA1, ids::SHA256, ids::CRC32];
    let dsp = [ids::FIR, ids::MATMUL8];
    Workload::tenants(
        &[
            (&gateway, 6.0, 1504),
            (&telemetry, 3.0, 256),
            (&dsp, 1.0, 1024),
        ],
        n,
        seed,
    )
}

/// The large-footprint DSP/AI tier (E19): serve it from
/// [`AlgorithmBank::extended`].
pub fn kernel_mix() -> Vec<u16> {
    ids::DSP_AI.to_vec()
}

/// The canonical DSP/AI tier workload (E19): three tenants, one per
/// kernel, each pushing 4 KiB payloads (8 matrix pairs / 4 image
/// tiles / 16 FFT blocks per request). The three images total 192
/// frames on a 96-frame device, so serving the mix is constant
/// reconfiguration pressure with ~60 KiB bitstreams per swap.
pub fn kernel_workload(n: usize, seed: u64) -> Workload {
    let tenant = |name: &str, algo: u16| TenantSpec {
        name: name.into(),
        algos: vec![algo],
        weight: 1,
        offered: 1,
        input_len: 4096,
        quota: None,
    };
    Workload::multi_tenant(
        &[
            tenant("mm", ids::MATMUL16),
            tenant("cv", ids::CONV2D),
            tenant("ft", ids::FFT64),
        ],
        n,
        seed,
    )
}

/// The canonical weighted-fair overload scenario (E19): two paying
/// tenants with high weights and modest offered load, plus a flooding
/// tenant that offers 10× its weighted share. Under 2× overload a
/// drop-newest admission lets the flood starve the payers; the
/// weighted-fair layer sheds the flooder back to its share.
pub fn fair_overload_workload(n: usize, seed: u64) -> Workload {
    Workload::multi_tenant(
        &[
            TenantSpec {
                name: "gateway".into(),
                algos: vec![ids::MATMUL16],
                weight: 4,
                offered: 1,
                input_len: 4096,
                quota: None,
            },
            TenantSpec {
                name: "vision".into(),
                algos: vec![ids::CONV2D],
                weight: 2,
                offered: 1,
                input_len: 4096,
                quota: None,
            },
            TenantSpec {
                name: "flood".into(),
                algos: vec![ids::FFT64],
                weight: 1,
                offered: 10,
                input_len: 4096,
                quota: None,
            },
        ],
        n,
        seed,
    )
}

/// A realistic input length for one invocation of `algo_id`
/// (an Ethernet-MTU packet for packet-processing kernels, a filter
/// window for DSP, one matrix pair for the multiplier).
pub fn default_input_len(algo_id: u16) -> usize {
    match algo_id {
        ids::AES128 => 1504, // packet padded to 16
        ids::XTEA => 1504,
        ids::SHA1 => 1500,
        ids::SHA256 => 1500,
        ids::CRC32 => 1500,
        ids::FIR => 1024,     // 512 i16 samples
        ids::MATMUL8 => 1280, // 10 matrix pairs
        ids::CRC8 => 256,
        ids::ADDER8 => 256,
        ids::POPCNT8 => 256,
        ids::PARITY8 => 256,
        ids::TDES => 1504,
        ids::HMAC_SHA1 => 1500,
        ids::MATMUL16 => 4096, // 8 matrix pairs
        ids::CONV2D => 4096,   // 4 image tiles
        ids::FFT64 => 4096,    // 16 FFT blocks
        _ => 256,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_subsets_of_the_bank() {
        for id in crypto_mix().into_iter().chain(netlist_mix()) {
            assert!(full_bank().contains(&id));
        }
    }

    #[test]
    fn input_lengths_respect_block_shapes() {
        assert_eq!(default_input_len(ids::AES128) % 16, 0);
        assert_eq!(default_input_len(ids::XTEA) % 8, 0);
        assert_eq!(default_input_len(ids::FIR) % 2, 0);
        assert_eq!(default_input_len(ids::MATMUL8) % 128, 0);
        assert!(default_input_len(9999) > 0);
    }

    #[test]
    fn mixes_have_no_duplicates_and_do_not_overlap() {
        for mix in [crypto_mix(), netlist_mix(), full_bank()] {
            let unique: std::collections::BTreeSet<u16> = mix.iter().copied().collect();
            assert_eq!(unique.len(), mix.len(), "duplicate id in mix");
        }
        for id in netlist_mix() {
            assert!(
                !crypto_mix().contains(&id),
                "netlist and crypto mixes must be disjoint"
            );
        }
    }

    #[test]
    fn straggler_workload_shape() {
        let w = straggler_workload(1000, 42);
        assert_eq!(w.len(), 1000);
        // four algorithms: fits a default shard, so dynamic dispatch
        // may replicate every algorithm on every shard without
        // serving-time reconfigurations
        assert_eq!(w.distinct_algos().len(), 4);
        let hot = w.algo_trace().iter().filter(|&&a| a == ids::SHA1).count();
        assert!((500..700).contains(&hot), "hot count {hot}");
    }

    #[test]
    fn dedup_bank_and_mix_line_up() {
        let bank = dedup_bank();
        for id in dedup_mix() {
            assert!(bank.kernel(id).is_some(), "missing {id}");
        }
        assert_eq!(bank.len(), 14);
        // the working set must overcommit the default device, or the
        // dedup scenario never re-configures
        let geom = aaod_fabric::DeviceGeometry::default();
        let total: usize = dedup_mix()
            .iter()
            .map(|&id| bank.build_image(id, geom).unwrap().frames_needed(geom))
            .sum();
        assert!(total > geom.frames(), "working set fits: {total} frames");
        // SHA-1 and its alias share at least 30% of their frames
        let a = bank.build_image(ids::SHA1, geom).unwrap().encode(geom);
        let b = bank.build_image(SHA1_ALIAS, geom).unwrap().encode(geom);
        let shared = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            shared * 10 >= a.len() * 3,
            "only {shared}/{} frames shared",
            a.len()
        );
    }

    #[test]
    fn dedup_workload_covers_the_mix() {
        let w = dedup_workload(400, 7);
        assert_eq!(w.len(), 400);
        assert_eq!(w.distinct_algos().len(), dedup_mix().len());
    }

    #[test]
    fn fleet_workload_interleaves_all_tenants() {
        let w = fleet_workload(4_000, 5);
        assert_eq!(w.len(), 4_000);
        assert_eq!(w, fleet_workload(4_000, 5));
        let trace = w.algo_trace();
        let gateway = trace
            .iter()
            .filter(|a| [ids::AES128, ids::TDES, ids::HMAC_SHA1, ids::XTEA].contains(a))
            .count();
        let dsp = trace
            .iter()
            .filter(|a| [ids::FIR, ids::MATMUL8].contains(a))
            .count();
        assert!(gateway > dsp * 2, "gateway {gateway}, dsp {dsp}");
        assert!(dsp > 0, "dsp tenant starved");
        assert!(w.distinct_algos().len() >= 7, "{:?}", w.distinct_algos());
    }

    #[test]
    fn kernel_workload_exercises_the_whole_tier() {
        let w = kernel_workload(600, 11);
        assert_eq!(w.len(), 600);
        assert_eq!(w, kernel_workload(600, 11));
        assert_eq!(w.distinct_algos(), kernel_mix());
        let bank = AlgorithmBank::extended();
        for id in kernel_mix() {
            assert!(bank.kernel(id).is_some(), "missing {id}");
        }
        // payloads are block-aligned for every kernel in the tier
        for r in w.requests() {
            assert_eq!(r.input_len % 512, 0);
            assert_eq!(r.input_len % 1024, 0);
            assert_eq!(r.input_len % 256, 0);
        }
        // the working set overcommits the device 2x — constant
        // reconfiguration pressure
        let geom = aaod_fabric::DeviceGeometry::default();
        let total: usize = kernel_mix()
            .iter()
            .map(|&id| bank.build_image(id, geom).unwrap().frames_needed(geom))
            .sum();
        assert_eq!(total, 192);
        assert!(total >= 2 * geom.frames());
    }

    #[test]
    fn fair_overload_workload_is_flood_dominated() {
        let w = fair_overload_workload(6_000, 3);
        let specs = w.tenant_specs().unwrap();
        assert_eq!(specs.len(), 3);
        let mut counts = [0usize; 3];
        for i in 0..w.len() {
            counts[w.tenant_of(i).unwrap() as usize] += 1;
        }
        // the flooder offers 10/12 of the traffic with 1/7 the weight
        assert!(counts[2] > 4 * (counts[0] + counts[1]), "{counts:?}");
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    fn every_bank_algorithm_has_a_positive_input_len() {
        for id in full_bank() {
            assert!(default_input_len(id) > 0, "algo {id} has no input length");
        }
        // block ciphers must get block-aligned payloads
        assert_eq!(default_input_len(ids::TDES) % 8, 0);
    }
}

//! Standard algorithm mixes and realistic per-algorithm input sizes.
//!
//! The experiments repeatedly need "the crypto subset of the bank" or
//! "everything", and a plausible payload size per kernel (an IPSec
//! packet for ciphers/hashes, a sample window for the FIR, …).

use aaod_algos::ids;

/// The crypto subset — the paper's motivating IPSec-style bank.
pub fn crypto_mix() -> Vec<u16> {
    vec![
        ids::AES128,
        ids::TDES,
        ids::XTEA,
        ids::SHA1,
        ids::SHA256,
        ids::HMAC_SHA1,
        ids::CRC32,
    ]
}

/// Every algorithm in the standard bank.
pub fn full_bank() -> Vec<u16> {
    ids::ALL.to_vec()
}

/// The small netlist-backed functions.
pub fn netlist_mix() -> Vec<u16> {
    vec![ids::CRC8, ids::ADDER8, ids::POPCNT8, ids::PARITY8]
}

/// A realistic input length for one invocation of `algo_id`
/// (an Ethernet-MTU packet for packet-processing kernels, a filter
/// window for DSP, one matrix pair for the multiplier).
pub fn default_input_len(algo_id: u16) -> usize {
    match algo_id {
        ids::AES128 => 1504, // packet padded to 16
        ids::XTEA => 1504,
        ids::SHA1 => 1500,
        ids::SHA256 => 1500,
        ids::CRC32 => 1500,
        ids::FIR => 1024,     // 512 i16 samples
        ids::MATMUL8 => 1280, // 10 matrix pairs
        ids::CRC8 => 256,
        ids::ADDER8 => 256,
        ids::POPCNT8 => 256,
        ids::PARITY8 => 256,
        ids::TDES => 1504,
        ids::HMAC_SHA1 => 1500,
        _ => 256,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_subsets_of_the_bank() {
        for id in crypto_mix().into_iter().chain(netlist_mix()) {
            assert!(full_bank().contains(&id));
        }
    }

    #[test]
    fn input_lengths_respect_block_shapes() {
        assert_eq!(default_input_len(ids::AES128) % 16, 0);
        assert_eq!(default_input_len(ids::XTEA) % 8, 0);
        assert_eq!(default_input_len(ids::FIR) % 2, 0);
        assert_eq!(default_input_len(ids::MATMUL8) % 128, 0);
        assert!(default_input_len(9999) > 0);
    }

    #[test]
    fn mixes_have_no_duplicates_and_do_not_overlap() {
        for mix in [crypto_mix(), netlist_mix(), full_bank()] {
            let unique: std::collections::BTreeSet<u16> = mix.iter().copied().collect();
            assert_eq!(unique.len(), mix.len(), "duplicate id in mix");
        }
        for id in netlist_mix() {
            assert!(
                !crypto_mix().contains(&id),
                "netlist and crypto mixes must be disjoint"
            );
        }
    }

    #[test]
    fn every_bank_algorithm_has_a_positive_input_len() {
        for id in full_bank() {
            assert!(default_input_len(id) > 0, "algo {id} has no input length");
        }
        // block ciphers must get block-aligned payloads
        assert_eq!(default_input_len(ids::TDES) % 8, 0);
    }
}

//! Bitstream compression survey (experiment E2).
//!
//! The paper stores *compressed* configuration bitstreams in ROM and
//! leaves the codec open ("explore advanced techniques for compression
//! that can exploit the symmetry in the CLB architectures"). This
//! survey compresses every algorithm's bitstream with every codec and
//! reports ratio, ROM footprint and modelled decompression time on the
//! 50 MHz microcontroller — the trade-off the configuration module
//! lives on.
//!
//! Run with: `cargo run --example compression_survey`

use aaod_algos::AlgorithmBank;
use aaod_bitstream::codec::{registry, CodecId};
use aaod_bitstream::{Bitstream, CompressionStats};
use aaod_fabric::DeviceGeometry;
use aaod_sim::report::{f2, Table};
use aaod_sim::Clock;

fn main() {
    let geom = DeviceGeometry::default();
    let bank = AlgorithmBank::standard();
    let mcu = aaod_sim::clock::domains::mcu();

    // One column per registered codec, so a codec added to the
    // registry shows up here automatically.
    let codec_names: Vec<String> = registry::all(geom.frame_bytes())
        .iter()
        .map(|c| c.id().to_string())
        .collect();
    let mut headers = vec!["function", "raw KiB"];
    headers.extend(codec_names.iter().map(String::as_str));
    let mut t = Table::new(
        "E2: compression ratio by codec (rows: function bitstreams)",
        &headers,
    );
    let mut totals = vec![0usize; CodecId::ALL.len()];
    let mut raw_total = 0usize;
    for kernel in bank.iter() {
        let image = bank
            .build_image(kernel.algo_id(), geom)
            .expect("bank image");
        let bs = Bitstream::from_image(&image, geom);
        let flat = bs.flat();
        raw_total += flat.len();
        let mut row = vec![
            kernel.name().to_string(),
            format!("{:.1}", flat.len() as f64 / 1024.0),
        ];
        for (i, codec) in registry::all(geom.frame_bytes()).iter().enumerate() {
            let stats = CompressionStats::measure(codec.as_ref(), &flat);
            totals[i] += stats.compressed;
            row.push(f2(stats.ratio()));
        }
        t.row_owned(row);
    }
    println!("{t}");

    let mut t = Table::new(
        "E2b: whole-bank ROM footprint and decompression speed",
        &[
            "codec",
            "bank KiB",
            "overall ratio",
            "decompress MB/s @50MHz",
        ],
    );
    for (i, codec) in registry::all(geom.frame_bytes()).iter().enumerate() {
        let ratio = raw_total as f64 / totals[i] as f64;
        let mb_s = throughput_mb_s(mcu, codec.cycles_per_output_byte());
        t.row_owned(vec![
            codec.id().to_string(),
            format!("{:.1}", totals[i] as f64 / 1024.0),
            f2(ratio),
            f2(mb_s),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: frame-xor (CLB-column symmetry) and lzss lead on\n\
         ratio; rle decompresses fastest; huffman pays the most MCU cycles."
    );
}

fn throughput_mb_s(clock: Clock, cycles_per_byte: u64) -> f64 {
    clock.freq_hz() as f64 / cycles_per_byte as f64 / 1e6
}

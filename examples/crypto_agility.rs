//! Crypto agility: the IPSec-gateway scenario the paper's references
//! motivate (experiment E5).
//!
//! A gateway renegotiates cipher suites over time — a *phased*
//! workload over {AES-128, XTEA, SHA-1, SHA-256, CRC-32}. Four systems
//! service the same stream:
//!
//! * the paper's agile co-processor (partial reconfiguration, LRU),
//! * an FPGA card without partial reconfiguration (full reconfig per
//!   swap),
//! * a fixed-function AES accelerator (everything else in software),
//! * the host CPU alone.
//!
//! Run with: `cargo run --example crypto_agility`

use aaod_algos::ids;
use aaod_core::baselines::{FixedFunctionCoProcessor, SoftwareExecutor};
use aaod_core::{run_workload, CoProcessor, CoreError, Executor, ReconfigMode};
use aaod_sim::report::{f2, Table};
use aaod_workload::{mixes, Workload};

fn main() -> Result<(), CoreError> {
    // The compute-heavy ciphers/hash an ESP tunnel actually swaps
    // between; cheap kernels (CRC-32, SHA-1) appear in the
    // per-algorithm crossover table below instead.
    let algos = vec![ids::AES128, ids::TDES, ids::SHA256];
    // 400 requests, cipher-suite renegotiation every 40, 2 active
    // algorithms per phase, IPSec-packet-sized payloads.
    let workload = Workload::phased(&algos, 400, 40, 2, 1504, 2005);
    println!(
        "workload: {} ({} requests over {} algorithms)\n",
        workload.name(),
        workload.len(),
        algos.len()
    );

    let mut agile = CoProcessor::default();
    let mut full = CoProcessor::builder().mode(ReconfigMode::Full).build();
    for &id in &algos {
        agile.install(id)?;
        full.install(id)?;
    }
    let mut fixed = FixedFunctionCoProcessor::new(ids::AES128)?;
    let mut software = SoftwareExecutor::new();

    let mut t = Table::new(
        "E5: agility payoff (same phased crypto workload)",
        &[
            "system",
            "total time",
            "mean/req",
            "p95/req (ns)",
            "throughput MB/s",
            "hit rate",
        ],
    );
    let systems: Vec<&mut dyn Executor> = vec![&mut agile, &mut full, &mut fixed, &mut software];
    for system in systems {
        let r = run_workload(system, &workload, true)?;
        let summary = r.latency.summary_ns();
        t.row_owned(vec![
            r.executor.clone(),
            r.total_time.to_string(),
            r.mean_latency().to_string(),
            format!("{:.0}", summary.p95),
            f2(r.throughput_mb_s()),
            r.hit_rate()
                .map_or("-".into(), |h| format!("{:.1}%", h * 100.0)),
        ]);
    }
    println!("{t}");

    // Per-algorithm crossover: where does offload pay?
    let mut t = Table::new(
        "E5b: offload crossover (resident hit vs software, per algorithm)",
        &["function", "bytes", "hw hit", "software", "speedup"],
    );
    let mut warm = CoProcessor::default();
    for &id in &mixes::crypto_mix() {
        warm.install(id)?;
    }
    let mut sw2 = SoftwareExecutor::new();
    for &id in &mixes::crypto_mix() {
        let len = mixes::default_input_len(id);
        let input = vec![0xA5u8; len];
        warm.invoke(id, &input)?; // swap-in
        let (_, hw) = warm.invoke(id, &input)?; // resident hit
        let (_, sw_t) = sw2.invoke(id, &input)?;
        t.row_owned(vec![
            format!("algo {id}"),
            len.to_string(),
            hw.total().to_string(),
            sw_t.to_string(),
            f2(sw_t.as_ns() / hw.total().as_ns()),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: agile > software on cipher-heavy streams; the\n\
         full-reconfig card is crippled by whole-device rewrites; the\n\
         crossover table shows offload paying on AES/XTEA (speedup > 1)\n\
         and losing on trivial kernels like CRC-32 (speedup < 1)."
    );
    Ok(())
}

//! Extending the bank: a user-defined netlist kernel, end to end.
//!
//! The paper's whole point is that new algorithms are a *download*, not
//! a silicon respin. This example plays the role of that downstream
//! user: it synthesises a brand-new function (a 4-bit×4-bit multiplier)
//! as a LUT netlist, runs it through the fabric optimiser, wraps it as
//! a [`aaod_algos::Kernel`], registers it in a custom bank, and invokes
//! it on the co-processor — where it executes from the configured
//! frame bits like every built-in function.
//!
//! Run with: `cargo run --example custom_kernel`

use aaod_algos::{AlgoError, AlgorithmBank, Kernel};
use aaod_core::{CoProcessor, CoreError};
use aaod_fabric::opt::optimize;
use aaod_fabric::{DeviceGeometry, FunctionImage, Netlist, NetlistBuilder, NetlistMode};
use std::sync::Arc;

/// Our private algorithm id (outside the standard bank's range).
const MUL4_ID: u16 = 100;

/// Synthesises a 4×4-bit multiplier: 8 inputs (a, b nibbles of one
/// byte) → 8 output bits, via shift-and-add partial products.
fn mul4_netlist() -> Netlist {
    let mut b = NetlistBuilder::new();
    let bits = b.inputs(8);
    let (a, bb) = bits.split_at(4);
    let zero = b.zero();
    // partial products: pp[j][i] = a[i] AND b[j]
    // accumulate into an 8-bit result with ripple adds
    let mut acc = vec![zero; 8];
    for (j, &bj) in bb.iter().enumerate() {
        let mut addend = vec![zero; 8];
        for (i, &ai) in a.iter().enumerate() {
            addend[i + j] = b.and2(ai, bj);
        }
        let (sum, _carry) = b.ripple_add(&acc, &addend);
        acc = sum;
    }
    b.output_vec(&acc);
    b.finish().expect("multiplier netlist is well-formed")
}

/// The kernel: one byte in (low nibble × high nibble), one byte out.
#[derive(Debug, Clone, Copy)]
struct Mul4;

impl Kernel for Mul4 {
    fn algo_id(&self) -> u16 {
        MUL4_ID
    }

    fn name(&self) -> &'static str {
        "mul4"
    }

    fn default_params(&self) -> Vec<u8> {
        Vec::new()
    }

    fn execute(&self, params: &[u8], input: &[u8]) -> Result<Vec<u8>, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "mul4",
                reason: "takes no parameters".into(),
            });
        }
        Ok(input
            .iter()
            .map(|&byte| (byte & 0x0F).wrapping_mul(byte >> 4))
            .collect())
    }

    fn input_width(&self) -> u16 {
        1
    }

    fn output_width(&self) -> u16 {
        1
    }

    fn build_image(
        &self,
        params: &[u8],
        _geom: DeviceGeometry,
    ) -> Result<FunctionImage, AlgoError> {
        if !params.is_empty() {
            return Err(AlgoError::BadParams {
                kernel: "mul4",
                reason: "takes no parameters".into(),
            });
        }
        let raw = mul4_netlist();
        let (opt, stats) = optimize(&raw).expect("netlist is valid");
        println!(
            "synthesis: {} LUTs raw -> {} after optimisation ({:.0}% saved, depth {})",
            stats.luts_before,
            stats.luts_after,
            stats.saving() * 100.0,
            opt.depth()
        );
        Ok(FunctionImage::from_netlist(
            MUL4_ID,
            opt,
            NetlistMode::Combinational,
            1,
            1,
        ))
    }

    fn fabric_cycles(&self, input_len: usize) -> u64 {
        input_len as u64 + 1
    }

    fn software_cycles(&self, input_len: usize) -> u64 {
        3 * input_len as u64 + 10
    }
}

fn main() -> Result<(), CoreError> {
    // a bank containing the standard algorithms plus ours
    let mut bank = AlgorithmBank::standard();
    bank.register(Arc::new(Mul4));

    let mut cp = CoProcessor::builder().bank(bank).build();
    cp.install(MUL4_ID)?;

    // exhaustively verify the hardware against u8 arithmetic
    let inputs: Vec<u8> = (0..=255).collect();
    let (out, report) = cp.invoke(MUL4_ID, &inputs)?;
    let mut errors = 0;
    for (&byte, &got) in inputs.iter().zip(&out) {
        let want = (byte & 0x0F).wrapping_mul(byte >> 4);
        if got != want {
            errors += 1;
        }
    }
    println!(
        "mul4 on-fabric: {} inputs, {} mismatches, swap-in {}, total {}",
        inputs.len(),
        errors,
        report.os.reconfig_time,
        report.total()
    );
    assert_eq!(errors, 0, "hardware multiplier diverged");
    // second call is a residency hit
    let (_, report) = cp.invoke(MUL4_ID, &inputs)?;
    assert!(report.hit());
    println!("resident hit: {}", report.total());
    Ok(())
}

//! Frame-replacement policy explorer (experiment E4).
//!
//! Sweeps the paper's LRU policy against FIFO, LFU, random and the
//! clairvoyant Belady oracle across workload shapes and device sizes,
//! reporting hit rate and total service time. The paper specifies
//! "the frequently least used algorithm" (oldest timestamp) as the
//! victim; this explorer shows where that choice wins and where it
//! does not (round-robin defeats LRU, bursty forgives everything).
//!
//! Run with: `cargo run --example policy_explorer`

use aaod_core::{run_workload, CoProcessor, CoreError};
use aaod_fabric::DeviceGeometry;
use aaod_mcu::replacement::policy_by_name;
use aaod_mcu::{BeladyPolicy, ReplacementPolicy};
use aaod_sim::report::Table;
use aaod_workload::{mixes, Workload};

fn workloads(algos: &[u16]) -> Vec<Workload> {
    vec![
        Workload::zipf(algos, 300, 1.2, 512, 11),
        Workload::uniform(algos, 300, 512, 12),
        Workload::round_robin(algos, 300, 512),
        Workload::phased(algos, 300, 30, 3, 512, 13),
        Workload::bursty(algos, 300, 12, 512, 14),
    ]
}

fn main() -> Result<(), CoreError> {
    let algos = mixes::full_bank();

    for frames in [48u16, 96] {
        let geom = DeviceGeometry::new(frames, 16);
        let mut t = Table::new(
            &format!("E4: hit rate by policy ({frames}-frame device)"),
            &["workload", "lru", "fifo", "lfu", "random", "belady"],
        );
        for workload in workloads(&algos) {
            let mut row = vec![workload.name().to_string()];
            for policy_name in ["lru", "fifo", "lfu", "random", "belady"] {
                let policy: Box<dyn ReplacementPolicy> = if policy_name == "belady" {
                    Box::new(BeladyPolicy::new(workload.algo_trace()))
                } else {
                    policy_by_name(policy_name, 99)
                };
                let mut cp = CoProcessor::builder().geometry(geom).policy(policy).build();
                for &id in &algos {
                    cp.install(id)?;
                }
                let r = run_workload(&mut cp, &workload, false)?;
                row.push(format!("{:.1}%", r.hit_rate().unwrap_or(0.0) * 100.0));
            }
            t.row_owned(row);
        }
        println!("{t}");
    }
    println!(
        "expected shape: belady bounds everything from above; LRU ~ best\n\
         practical policy on zipf/phased; round-robin hurts LRU most."
    );
    Ok(())
}

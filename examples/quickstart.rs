//! Quickstart: the paper's Figure 1 path, end to end.
//!
//! Builds the co-processor card (PCI + microcontroller + partially
//! reconfigurable FPGA), downloads a few compressed bitstreams into the
//! dual-ended ROM, then invokes functions on demand and prints the
//! per-block latency breakdown — host → PCI → record lookup →
//! ROM fetch → windowed decompression → configuration port → data
//! input module → fabric → output collection → PCI → host.
//!
//! Run with: `cargo run --example quickstart`

use aaod_algos::ids;
use aaod_core::{CoProcessor, CoreError, Engine, EngineConfig, ShardPolicy};
use aaod_sim::report::Table;
use aaod_sim::SimTime;
use aaod_workload::Workload;

fn main() -> Result<(), CoreError> {
    let mut cp = CoProcessor::default();
    println!("device: {}\n", cp.geometry());

    // Download the compressed bitstreams into the card's ROM (§2.2).
    let mut t = Table::new(
        "ROM downloads (compressed bitstreams + record table)",
        &["function", "frames", "download time"],
    );
    for id in [ids::AES128, ids::SHA1, ids::CRC32, ids::CRC8] {
        let time = cp.install(id)?;
        let rec = cp.os().rom().lookup(id).expect("just downloaded");
        t.row_owned(vec![
            format!("algo {id}"),
            rec.n_frames.to_string(),
            time.to_string(),
        ]);
    }
    println!("{t}");

    // First invocation: miss -> swap-in (decompress window by window,
    // write frames through the configuration port), then execute.
    let mut t = Table::new(
        "on-demand invocations (miss = swap-in, hit = resident)",
        &[
            "function", "hit", "lookup", "rom", "reconfig", "input", "exec", "output", "total",
        ],
    );
    let requests: [(u16, &[u8]); 6] = [
        (ids::SHA1, b"abc"),
        (ids::SHA1, b"abc"),
        (ids::AES128, b"exactly 16 bytes"),
        (ids::CRC32, b"123456789"),
        (ids::CRC8, b"123456789"),
        (ids::SHA1, b"abc"),
    ];
    for (id, input) in requests {
        let (out, report) = cp.invoke(id, input)?;
        t.row_owned(vec![
            format!("algo {id}"),
            if report.hit() { "hit" } else { "MISS" }.into(),
            report.os.lookup_time.to_string(),
            report.os.rom_time.to_string(),
            report.os.reconfig_time.to_string(),
            report.os.input_time.to_string(),
            report.os.exec_time.to_string(),
            report.os.output_time.to_string(),
            report.total().to_string(),
        ]);
        if id == ids::CRC32 {
            assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
        }
        if id == ids::CRC8 {
            assert_eq!(out, vec![0xF4], "netlist CRC-8 executed from frame bits");
        }
    }
    println!("{t}");

    let s = cp.stats();
    println!(
        "requests: {}  hits: {}  misses: {}  evictions: {}  resident now: {:?}",
        s.requests,
        s.hits,
        s.misses,
        s.evictions,
        cp.resident()
    );
    println!(
        "\nframe ownership map ('.' = free, hex digit = algo id mod 16):\n{}",
        cp.os().frame_map()
    );

    // Concurrent serving: shard a skewed request stream across a pool
    // of cards and compare the modelled makespan against serial cost.
    let algos = [ids::AES128, ids::SHA1, ids::SHA256, ids::CRC32, ids::XTEA];
    let workload = Workload::zipf(&algos, 400, 1.1, 64, 42);
    let mut t = Table::new(
        "engine: sharded pool serving zipf(s=1.1), verified outputs",
        &[
            "workers",
            "policy",
            "speedup",
            "p50",
            "p95",
            "p99",
            "hit rate",
            "decoded hits",
        ],
    );
    for (workers, policy) in [
        (1, ShardPolicy::AlgoModulo),
        (4, ShardPolicy::AlgoModulo),
        (4, ShardPolicy::Balanced),
    ] {
        let engine = Engine::new(EngineConfig {
            workers,
            verify: true,
            shard: policy,
            ..EngineConfig::default()
        });
        let r = engine.serve(&workload)?;
        let lat = r.latency.summary_ns();
        t.row_owned(vec![
            workers.to_string(),
            policy.name().into(),
            format!("{:.2}x", r.speedup()),
            SimTime::from_ns(lat.p50 as u64).to_string(),
            SimTime::from_ns(lat.p95 as u64).to_string(),
            SimTime::from_ns(lat.p99 as u64).to_string(),
            format!("{:.0}%", r.hit_rate() * 100.0),
            format!(
                "{}/{} ({:.0}%)",
                r.stats.decoded_hits,
                r.stats.decoded_hits + r.stats.decoded_misses,
                r.stats.decoded_hit_rate() * 100.0
            ),
        ]);
    }
    println!("\n{t}");
    Ok(())
}

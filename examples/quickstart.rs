//! Quickstart: the paper's Figure 1 path, end to end.
//!
//! Builds the co-processor card (PCI + microcontroller + partially
//! reconfigurable FPGA), downloads a few compressed bitstreams into the
//! dual-ended ROM, then invokes functions on demand and prints the
//! per-block latency breakdown — host → PCI → record lookup →
//! ROM fetch → windowed decompression → configuration port → data
//! input module → fabric → output collection → PCI → host.
//!
//! Run with: `cargo run --example quickstart`

use aaod_algos::ids;
use aaod_core::{CoProcessor, CoreError};
use aaod_sim::report::Table;

fn main() -> Result<(), CoreError> {
    let mut cp = CoProcessor::default();
    println!("device: {}\n", cp.geometry());

    // Download the compressed bitstreams into the card's ROM (§2.2).
    let mut t = Table::new(
        "ROM downloads (compressed bitstreams + record table)",
        &["function", "frames", "download time"],
    );
    for id in [ids::AES128, ids::SHA1, ids::CRC32, ids::CRC8] {
        let time = cp.install(id)?;
        let rec = cp.os().rom().lookup(id).expect("just downloaded");
        t.row_owned(vec![
            format!("algo {id}"),
            rec.n_frames.to_string(),
            time.to_string(),
        ]);
    }
    println!("{t}");

    // First invocation: miss -> swap-in (decompress window by window,
    // write frames through the configuration port), then execute.
    let mut t = Table::new(
        "on-demand invocations (miss = swap-in, hit = resident)",
        &[
            "function", "hit", "lookup", "rom", "reconfig", "input", "exec", "output", "total",
        ],
    );
    let requests: [(u16, &[u8]); 6] = [
        (ids::SHA1, b"abc"),
        (ids::SHA1, b"abc"),
        (ids::AES128, b"exactly 16 bytes"),
        (ids::CRC32, b"123456789"),
        (ids::CRC8, b"123456789"),
        (ids::SHA1, b"abc"),
    ];
    for (id, input) in requests {
        let (out, report) = cp.invoke(id, input)?;
        t.row_owned(vec![
            format!("algo {id}"),
            if report.hit() { "hit" } else { "MISS" }.into(),
            report.os.lookup_time.to_string(),
            report.os.rom_time.to_string(),
            report.os.reconfig_time.to_string(),
            report.os.input_time.to_string(),
            report.os.exec_time.to_string(),
            report.os.output_time.to_string(),
            report.total().to_string(),
        ]);
        if id == ids::CRC32 {
            assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
        }
        if id == ids::CRC8 {
            assert_eq!(out, vec![0xF4], "netlist CRC-8 executed from frame bits");
        }
    }
    println!("{t}");

    let s = cp.stats();
    println!(
        "requests: {}  hits: {}  misses: {}  evictions: {}  resident now: {:?}",
        s.requests,
        s.hits,
        s.misses,
        s.evictions,
        cp.resident()
    );
    println!(
        "\nframe ownership map ('.' = free, hex digit = algo id mod 16):\n{}",
        cp.os().frame_map()
    );
    Ok(())
}

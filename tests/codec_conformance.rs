//! Codec conformance suite: every registered codec must honour the
//! same contract — lossless roundtrip on arbitrary byte frames
//! (including the degenerate empty / 1-byte / all-zero / all-ones
//! cases), container-level CRC rejection of corrupted payloads, and
//! truthful [`CompressionStats`] accounting.
//!
//! The suite is parameterised over [`CodecId::ALL`], so a codec added
//! to the registry is pinned by these invariants automatically.

use aaod_bitstream::codec::{decompress_all, registry, CodecId};
use aaod_bitstream::{Bitstream, BitstreamError, CompressionStats, HEADER_BYTES};
use aaod_sim::SplitMix64;

/// Frame sizes the harness sweeps: a degenerate 1-byte frame, a
/// power-of-two window, and the default device's 896-byte frame.
const FRAME_SIZES: [usize; 4] = [1, 7, 128, 896];

/// Named edge-case and workload-shaped inputs.
fn cases() -> Vec<(&'static str, Vec<u8>)> {
    let mut rng = SplitMix64::new(0xC0DEC);
    let mut random = vec![0u8; 4096];
    rng.fill(&mut random);
    let mut repeated = Vec::new();
    let mut frame = vec![0u8; 896];
    rng.fill(&mut frame);
    for _ in 0..4 {
        repeated.extend_from_slice(&frame); // identical frames (dedup)
    }
    let mut near = frame.clone();
    near[17] ^= 0x5A; // near-identical frame (delta)
    repeated.extend_from_slice(&near);
    vec![
        ("empty", Vec::new()),
        ("one-byte", vec![0xA5]),
        ("all-zero", vec![0u8; 2048]),
        ("all-ones", vec![0xFF; 2048]),
        ("sub-frame-tail", vec![0x3C; 1000]),
        ("random", random),
        ("repeated-frames", repeated),
    ]
}

#[test]
fn every_codec_roundtrips_every_case_at_every_frame_size() {
    for id in CodecId::ALL {
        for fb in FRAME_SIZES {
            let codec = registry::codec(id, fb);
            for (name, input) in cases() {
                let compressed = codec.compress(&input);
                let back = decompress_all(codec.as_ref(), &compressed)
                    .unwrap_or_else(|e| panic!("{id} fb={fb} {name}: {e}"));
                assert_eq!(back, input, "{id} fb={fb} {name}: roundtrip mismatch");
            }
        }
    }
}

#[test]
fn compression_stats_account_sizes_truthfully() {
    for id in CodecId::ALL {
        let codec = registry::codec(id, 896);
        for (name, input) in cases() {
            let stats = CompressionStats::measure(codec.as_ref(), &input);
            assert_eq!(stats.original, input.len(), "{id} {name}");
            assert_eq!(
                stats.compressed,
                codec.compress(&input).len(),
                "{id} {name}: stats must report the real compressed size"
            );
            assert_eq!(
                stats.decompress_cycles,
                codec.cycles_per_output_byte() * input.len() as u64,
                "{id} {name}: modelled cost is rate x output bytes"
            );
            if !input.is_empty() {
                assert!(stats.ratio() > 0.0, "{id} {name}");
            }
        }
    }
}

#[test]
fn single_bit_payload_corruption_is_rejected() {
    let frames: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i.wrapping_mul(37); 896]).collect();
    let bs = Bitstream::new(7, 8, 8, 896, frames).unwrap();
    for id in CodecId::ALL {
        let codec = registry::codec(id, 896);
        let rom = bs.encode(codec.as_ref());
        assert_eq!(Bitstream::decode(&rom).unwrap(), bs, "{id}: clean decode");
        // Flip one bit at several payload offsets: the container CRC
        // must catch each before any codec sees the bytes.
        let payload_len = rom.len() - HEADER_BYTES;
        for probe in [0, payload_len / 3, payload_len - 1] {
            let mut bad = rom.clone();
            bad[HEADER_BYTES + probe] ^= 0x01;
            match Bitstream::decode(&bad) {
                Err(BitstreamError::CrcMismatch { .. }) => {}
                other => panic!("{id} offset {probe}: expected CrcMismatch, got {other:?}"),
            }
        }
    }
}

#[test]
fn truncated_streams_are_rejected_not_misdecoded() {
    let frames: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 128]).collect();
    let bs = Bitstream::new(9, 8, 8, 128, frames).unwrap();
    for id in CodecId::ALL {
        let codec = registry::codec(id, 128);
        let rom = bs.encode(codec.as_ref());
        for cut in [HEADER_BYTES - 1, HEADER_BYTES, rom.len() - 1] {
            assert!(
                Bitstream::decode(&rom[..cut]).is_err(),
                "{id}: truncation to {cut} bytes must error"
            );
        }
    }
}

#[test]
fn container_roundtrips_function_frames_under_every_codec() {
    // The production path: image frames -> ROM bytes -> frames, for
    // every codec including DeltaV2 (whose stream must stay fully
    // self-contained — no frame store involved here).
    let geom = aaod_fabric::DeviceGeometry::default();
    let bank = aaod_algos::AlgorithmBank::standard();
    let image = bank.build_image(aaod_algos::ids::SHA1, geom).unwrap();
    let bs = Bitstream::from_image(&image, geom);
    for id in CodecId::ALL {
        let codec = registry::codec(id, geom.frame_bytes());
        let rom = bs.encode(codec.as_ref());
        let back = Bitstream::decode(&rom).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(back, bs, "{id}: container roundtrip");
    }
}

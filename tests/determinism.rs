//! Determinism regression tests.
//!
//! The whole simulator is seeded and single-sourced: a workload built
//! twice from the same seed must be identical request-for-request, and
//! the concurrent `Engine` must be a pure reordering of work — its
//! outputs and per-request residency classification must match a
//! serial pass on one co-processor, regardless of worker count or
//! sharding policy.

use aaod_algos::ids;
use aaod_bitstream::codec::CodecId;
use aaod_core::{CoProcessor, Engine, EngineConfig, ShardPolicy};
use aaod_workload::{mixes, Workload};

/// SHA1 (12 frames) + CRC32 (2) + CRC8 (<=2) + XTEA (6) all fit the
/// default 96-frame fabric simultaneously, so residency hits/misses do
/// not depend on request interleaving.
const FIT_SET: [u16; 4] = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];

#[test]
fn zipf_workload_reproduces_from_seed() {
    let a = Workload::zipf(&FIT_SET, 200, 1.1, 64, 99);
    let b = Workload::zipf(&FIT_SET, 200, 1.1, 64, 99);
    assert_eq!(a.requests(), b.requests());
    assert_eq!(a.algo_trace(), b.algo_trace());
    for i in 0..a.len() {
        assert_eq!(a.input(i), b.input(i), "input {i} diverged");
    }
    // A different seed must actually change the stream.
    let c = Workload::zipf(&FIT_SET, 200, 1.1, 64, 100);
    assert_ne!(a.algo_trace(), c.algo_trace());
}

#[test]
fn bursty_workload_reproduces_from_seed() {
    let a = Workload::bursty(&FIT_SET, 120, 8, 32, 7);
    let b = Workload::bursty(&FIT_SET, 120, 8, 32, 7);
    assert_eq!(a.requests(), b.requests());
    for i in 0..a.len() {
        assert_eq!(a.input(i), b.input(i), "input {i} diverged");
    }
}

/// Serves `workload` serially on one default co-processor with every
/// algorithm pre-installed, returning outputs and hit classification.
fn serial_reference(workload: &Workload) -> (Vec<Vec<u8>>, Vec<bool>) {
    let mut cp = CoProcessor::default();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    let mut outputs = Vec::with_capacity(workload.len());
    let mut hits = Vec::with_capacity(workload.len());
    for (i, req) in workload.requests().iter().enumerate() {
        let (out, report) = cp.invoke(req.algo_id, &workload.input(i)).unwrap();
        outputs.push(out);
        hits.push(report.hit());
    }
    (outputs, hits)
}

#[test]
fn engine_matches_serial_outputs_and_hits_across_widths() {
    let workload = Workload::zipf(&FIT_SET, 150, 1.1, 48, 13);
    let (expected_outputs, expected_hits) = serial_reference(&workload);
    for workers in [2, 4] {
        let engine = Engine::new(EngineConfig {
            workers,
            verify: true,
            ..EngineConfig::default()
        });
        let r = engine.serve(&workload).unwrap();
        assert_eq!(
            r.outputs.as_ref().unwrap(),
            &expected_outputs,
            "{workers}-worker engine outputs diverged from serial"
        );
        assert_eq!(
            r.per_request_hit, expected_hits,
            "{workers}-worker engine hit/miss classification diverged"
        );
    }
}

#[test]
fn engine_matches_serial_across_policies_on_bursty() {
    // Splitting policies replicate a hot algorithm across shards, so
    // each replica takes its own first-touch miss: only the outputs —
    // not the hit classification — are policy-invariant.
    let workload = Workload::bursty(&FIT_SET, 96, 6, 32, 21);
    let (expected_outputs, expected_hits) = serial_reference(&workload);
    for policy in [
        ShardPolicy::AlgoModulo,
        ShardPolicy::RoundRobin,
        ShardPolicy::Balanced,
        ShardPolicy::Dynamic,
        ShardPolicy::Auction,
    ] {
        let engine = Engine::new(EngineConfig {
            workers: 4,
            verify: true,
            shard: policy,
            ..EngineConfig::default()
        });
        let r = engine.serve(&workload).unwrap();
        assert_eq!(
            r.outputs.as_ref().unwrap(),
            &expected_outputs,
            "{} engine outputs diverged from serial",
            policy.name()
        );
        if policy == ShardPolicy::AlgoModulo {
            assert_eq!(r.per_request_hit, expected_hits);
        } else {
            let serial_misses = expected_hits.iter().filter(|h| !**h).count();
            let engine_misses = r.per_request_hit.iter().filter(|h| !**h).count();
            assert!(engine_misses >= serial_misses, "{}", policy.name());
        }
    }
}

/// The exact BENCH_dispatch configuration (straggler mix, seed 1,
/// dynamic work-stealing at 4 workers) is byte-identical run-to-run
/// and matches the serial reference — the bit-sliced batch evaluator
/// behind `invoke_batch` must be a pure speedup, never a behavioural
/// change, even under stealing and rebalancing.
#[test]
fn dispatch_bench_seeded_run_is_byte_identical() {
    let workload = aaod_workload::mixes::straggler_workload(1000, 1);
    let (expected_outputs, _) = serial_reference(&workload);
    let engine = Engine::new(EngineConfig {
        workers: 4,
        shard: ShardPolicy::Dynamic,
        ..EngineConfig::default()
    });
    let a = engine.serve(&workload).unwrap();
    let b = engine.serve(&workload).unwrap();
    assert_eq!(a.outputs.as_ref().unwrap(), &expected_outputs);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.per_request_hit, b.per_request_hit);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.shard_busy, b.shard_busy);
    assert_eq!(a.dispatch, b.dispatch);
    assert_eq!(a.stats, b.stats);
}

/// The E17 dedup workload seed. `AAOD_COMPRESS_SEED` pins or sweeps
/// it, so CI can drive the same hook through this suite and the E17
/// bench with one knob.
fn compress_seed() -> u64 {
    aaod_bench::env_seed("AAOD_COMPRESS_SEED", 1717)
}

/// The E17 card: DeltaV2 + frame store over the dedup bank, decoded
/// cache off so every miss takes the configure path.
fn dedup_card() -> CoProcessor {
    CoProcessor::builder()
        .codec(CodecId::DeltaV2)
        .bank(mixes::dedup_bank())
        .decoded_cache_bytes(0)
        .build()
}

/// The dedup-heavy mix (SHA-1 published under two ids, ~92% of frames
/// shared) through the content-addressed store: engine outputs must be
/// byte-identical to a serial pass under every sharding policy, and
/// each policy's merged `OsStats` — including the frame-store dedup
/// counters — must be identical run-to-run. The alias id is not in the
/// golden bank, so identity is checked against the serial pass, not
/// `verify`.
#[test]
fn dedup_mix_matches_serial_and_dedup_counters_are_deterministic() {
    let workload = mixes::dedup_workload(240, compress_seed());
    let mut cp = dedup_card();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    let expected: Vec<Vec<u8>> = workload
        .requests()
        .iter()
        .enumerate()
        .map(|(i, req)| cp.invoke(req.algo_id, &workload.input(i)).unwrap().0)
        .collect();
    let serial_stats = cp.stats();
    assert!(
        serial_stats.frame_store_hits > 0,
        "dedup mix never hit the frame store"
    );
    for policy in [
        ShardPolicy::AlgoModulo,
        ShardPolicy::RoundRobin,
        ShardPolicy::Balanced,
        ShardPolicy::Dynamic,
        ShardPolicy::Auction,
    ] {
        let engine = Engine::with_factory(
            EngineConfig {
                workers: 4,
                shard: policy,
                ..EngineConfig::default()
            },
            dedup_card,
        );
        let a = engine.serve(&workload).unwrap();
        let b = engine.serve(&workload).unwrap();
        assert_eq!(
            a.outputs.as_ref().unwrap(),
            &expected,
            "{} engine outputs diverged from serial on the dedup mix",
            policy.name()
        );
        assert_eq!(a.outputs, b.outputs, "{}", policy.name());
        assert_eq!(
            (
                a.stats.frame_store_hits,
                a.stats.frame_store_misses,
                a.stats.frame_store_bytes_deduped,
            ),
            (
                b.stats.frame_store_hits,
                b.stats.frame_store_misses,
                b.stats.frame_store_bytes_deduped,
            ),
            "{}: dedup counters must be identical run-to-run",
            policy.name()
        );
        assert_eq!(
            a.stats,
            b.stats,
            "{}: merged OsStats diverged between identical runs",
            policy.name()
        );
    }
}

#[test]
fn engine_run_is_repeatable() {
    let workload = Workload::zipf(&FIT_SET, 100, 1.1, 40, 5);
    let engine = Engine::new(EngineConfig {
        workers: 4,
        shard: ShardPolicy::Balanced,
        ..EngineConfig::default()
    });
    let a = engine.serve(&workload).unwrap();
    let b = engine.serve(&workload).unwrap();
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.per_request_hit, b.per_request_hit);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_service_time, b.total_service_time);
    assert_eq!(a.shard_busy, b.shard_busy);
    assert_eq!(a.stats, b.stats);
}

/// The E19 kernel-tier seed. `AAOD_KERNEL_SEED` pins or sweeps it,
/// so CI drives this suite, the conformance tier and the E19 bench
/// with one knob.
fn kernel_seed() -> u64 {
    aaod_bench::env_seed("AAOD_KERNEL_SEED", 42)
}

/// A card whose bank includes the DSP/AI tier (the worker `verify`
/// golden is pinned to the standard bank, so identity is checked
/// against a serial pass instead).
fn kernel_card() -> CoProcessor {
    CoProcessor::builder()
        .bank(aaod_algos::AlgorithmBank::extended())
        .build()
}

/// The DSP/AI kernel mix (72/56/64-frame images on a 96-frame device,
/// so every policy is under constant reconfiguration pressure) is
/// byte-identical run-to-run under every sharding policy, makespan
/// and merged stats included.
#[test]
fn kernel_mix_is_repeatable_across_policies() {
    let workload = mixes::kernel_workload(90, kernel_seed());
    for policy in [
        ShardPolicy::AlgoModulo,
        ShardPolicy::RoundRobin,
        ShardPolicy::Balanced,
        ShardPolicy::Dynamic,
        ShardPolicy::Auction,
    ] {
        let engine = Engine::with_factory(
            EngineConfig {
                workers: 4,
                shard: policy,
                ..EngineConfig::default()
            },
            kernel_card,
        );
        let a = engine.serve(&workload).unwrap();
        let b = engine.serve(&workload).unwrap();
        assert_eq!(a.outputs, b.outputs, "{}", policy.name());
        assert_eq!(a.makespan, b.makespan, "{}", policy.name());
        assert_eq!(a.shard_busy, b.shard_busy, "{}", policy.name());
        assert_eq!(a.stats, b.stats, "{}", policy.name());
    }
}

/// The same mix through a replicated fleet: identical outputs, job
/// assignment and ledger run-to-run.
#[test]
fn kernel_mix_cluster_is_repeatable() {
    use aaod_core::{Cluster, ClusterConfig};
    let workload = mixes::kernel_workload(90, kernel_seed());
    let bank = aaod_algos::AlgorithmBank::extended();
    let cluster = Cluster::with_factory(
        ClusterConfig {
            cards: 4,
            replication: 2,
            card_workers: 2,
            ..ClusterConfig::default()
        },
        kernel_card,
    );
    let a = cluster.serve(&workload, &bank).unwrap();
    let b = cluster.serve(&workload, &bank).unwrap();
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.stats, b.stats);
}

/// The E20 predictive-policy seed. `AAOD_PREDICT_SEED` pins or sweeps
/// it, so CI drives this suite and the E20 bench with one knob.
fn predict_seed() -> u64 {
    aaod_bench::env_seed("AAOD_PREDICT_SEED", 11)
}

/// The E9/E20 over-committed card: 52 frames against a 58-frame
/// crypto working set, so residency churns constantly and speculation
/// has something to win.
fn churn_card() -> CoProcessor {
    CoProcessor::builder()
        .geometry(aaod_fabric::DeviceGeometry::new(52, 16))
        .build()
}

/// The engine-level predictive prefetcher is a pure function of each
/// shard's arrival subsequence: the same stream must drive bit-equal
/// prefetch decisions (merged `OsStats`, prefetch counters included)
/// run-to-run under every sharding policy — auction arm included —
/// and speculation must never change a single output byte.
#[test]
fn predictive_engine_is_repeatable_and_output_invariant_across_policies() {
    use aaod_core::PredictConfig;
    let big_three = [ids::AES128, ids::TDES, ids::SHA256];
    let workload = Workload::round_robin(&big_three, 240, 64);
    let (expected_outputs, _) = serial_reference(&workload);
    let mut prefetched_anywhere = false;
    for policy in [
        ShardPolicy::AlgoModulo,
        ShardPolicy::RoundRobin,
        ShardPolicy::Balanced,
        ShardPolicy::Dynamic,
        ShardPolicy::Auction,
    ] {
        let engine = Engine::with_factory(
            EngineConfig {
                workers: 2,
                shard: policy,
                predict: Some(PredictConfig::default()),
                ..EngineConfig::default()
            },
            churn_card,
        );
        let a = engine.serve(&workload).unwrap();
        let b = engine.serve(&workload).unwrap();
        assert_eq!(
            a.outputs.as_ref().unwrap(),
            &expected_outputs,
            "{}: speculative configuration changed output bytes",
            policy.name()
        );
        assert_eq!(
            a.stats,
            b.stats,
            "{}: same arrival stream must drive identical prefetch decisions",
            policy.name()
        );
        assert_eq!(a.outputs, b.outputs, "{}", policy.name());
        assert_eq!(a.makespan, b.makespan, "{}", policy.name());
        assert_eq!(a.shard_busy, b.shard_busy, "{}", policy.name());
        prefetched_anywhere |= a.stats.prefetches > 0;
    }
    // rotation over an over-committed device is the prefetcher's home
    // turf: if no policy speculated at all the test went vacuous
    assert!(prefetched_anywhere, "predictor never issued a prefetch");
}

/// The online replication policy in a 4-card fleet: the same
/// flash-crowd arrival stream must produce the identical hysteresis
/// flip sequence run-to-run, the gate must honour its refractory
/// window, the ledger must match the flips — and churning the replica
/// map must never change a single output byte versus the static
/// planner.
#[test]
fn predictive_cluster_flip_sequence_is_repeatable() {
    use aaod_algos::AlgorithmBank;
    use aaod_core::{Cluster, ClusterConfig, Flip, PredictConfig};
    // The hot id rides the *tail* Zipf rank (~12 % of the baseline),
    // so its popularity structurally rises through `hot_up` during the
    // spike and falls back through `cold_down` afterwards — a full
    // replicate/de-replicate cycle for any seed. A head-rank hot algo
    // would keep ~48 % of the baseline and never cool off.
    let crowd = [ids::CRC32, ids::CRC8, ids::XTEA, ids::SHA1];
    let workload = Workload::flash_crowd(&crowd, ids::SHA1, 400, 20, 32, predict_seed());
    let bank = AlgorithmBank::standard();
    let cfg = PredictConfig::default();
    let config = || ClusterConfig {
        cards: 4,
        card_workers: 2,
        predict: Some(cfg),
        ..ClusterConfig::default()
    };
    let a = Cluster::new(config()).serve(&workload, &bank).unwrap();
    let b = Cluster::new(config()).serve(&workload, &bank).unwrap();
    assert_eq!(
        a.flips, b.flips,
        "same arrival stream must produce the same flip sequence"
    );
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.stats, b.stats);
    // the spike must drive the policy through a full cycle: replicate
    // on the way up, de-replicate once the crowd disperses
    let reps = a.flips.iter().filter(|f| f.kind == Flip::Replicate).count() as u64;
    let dereps = a
        .flips
        .iter()
        .filter(|f| f.kind == Flip::Dereplicate)
        .count() as u64;
    assert!(reps >= 1, "flash crowd never triggered a replication");
    assert!(dereps >= 1, "dispersal never triggered a de-replication");
    assert_eq!((a.stats.replicates, a.stats.dereplicates), (reps, dereps));
    // hysteresis: no algorithm may flip twice inside the refractory
    // window — that is exactly the oscillation the gate exists to stop
    let mut last: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    for f in &a.flips {
        if let Some(prev) = last.insert(f.algo, f.at) {
            assert!(
                f.at - prev >= cfg.refractory,
                "algo {} flipped at {} and again at {} (refractory {})",
                f.algo,
                prev,
                f.at,
                cfg.refractory
            );
        }
    }
    // replica-map churn is pure placement: byte-identical to the
    // static offline planner on the same stream
    let offline = Cluster::new(ClusterConfig {
        cards: 4,
        card_workers: 2,
        replication: 2,
        ..ClusterConfig::default()
    })
    .serve(&workload, &bank)
    .unwrap();
    assert_eq!(
        a.outputs, offline.outputs,
        "online replication changed output bytes"
    );
}

//! Fleet-level cluster tests: card fault domains, health-checked
//! routing, failover, hedging and the conservation ledger.
//!
//! The invariants under test are the contract of the cluster layer:
//!
//! * **byte identity** — every surviving job output is byte-identical
//!   to a fault-free serial oracle, under any seeded card-kill
//!   schedule and no matter which replica served it;
//! * **job conservation** — `submitted == completed + shed +
//!   deadline_missed + faulted + lost_unrecoverable`
//!   ([`aaod_core::ClusterStats::accounted`]);
//! * **breaker reconciliation** — `failovers + hedges ==
//!   breaker_rejections + card_failures`: every redirection decision
//!   maps to exactly one breaker rejection or one observed card
//!   failure ([`aaod_core::ClusterStats::reconciled`]);
//! * **determinism** — the same (workload, plan, seed) reproduces the
//!   identical result, failover/hedge counts, health timelines and
//!   trace included.
//!
//! The cluster-plan seed is taken from `AAOD_CLUSTER_SEED` when set
//! (the CI cluster matrix sweeps it) and falls back to a fixed
//! default.

use aaod_algos::AlgorithmBank;
use aaod_core::{Cluster, ClusterConfig, CoProcessor, JobError, TraceConfig};
use aaod_sim::{CardFault, CardFaultRates, ClusterFaultPlan, SimTime};
use aaod_workload::mixes::fleet_workload;
use aaod_workload::Workload;

/// Seed for the cluster fault plan: `AAOD_CLUSTER_SEED` if set.
fn plan_seed() -> u64 {
    aaod_bench::env_seed("AAOD_CLUSTER_SEED", 0xC1A57E2)
}

/// The fault horizon every plan in this suite runs under, sized so
/// fault fractions land inside the arrival span of a 300–400 job run
/// (interarrival 2 us), not after it.
const HORIZON: SimTime = SimTime::from_us(800);

/// A small fleet config the tests share: 8 cards, hot algorithms on
/// three replicas.
fn fleet_config() -> ClusterConfig {
    ClusterConfig {
        cards: 8,
        replication: 3,
        card_workers: 2,
        ..ClusterConfig::default()
    }
}

/// Fault-free serial oracle: the whole workload on one card, in
/// submission order.
fn serial_oracle(workload: &Workload) -> Vec<Vec<u8>> {
    let mut cp = CoProcessor::default();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    workload
        .requests()
        .iter()
        .enumerate()
        .map(|(i, req)| cp.invoke(req.algo_id, &workload.input(i)).unwrap().0)
        .collect()
}

/// Every surviving output must match the oracle byte-for-byte, and
/// the ledger must balance; returns the goodput for caller asserts.
fn check_run(cluster: &Cluster, workload: &Workload, oracle: &[Vec<u8>]) -> f64 {
    let bank = AlgorithmBank::standard();
    let result = cluster.serve(workload, &bank).unwrap();
    let outputs = result.outputs.as_ref().expect("outputs collected");
    for (i, out) in outputs.iter().enumerate() {
        let has_result = result.assignment[i].is_some()
            && !result.failed.contains_key(&i)
            && !result.deadline_missed.contains_key(&i);
        if has_result {
            assert_eq!(out, &oracle[i], "survivor output diverged at job {i}");
        } else {
            assert!(out.is_empty(), "non-surviving job {i} left bytes behind");
        }
    }
    assert!(result.stats.accounted(), "ledger: {:?}", result.stats);
    assert!(result.stats.reconciled(), "ledger: {:?}", result.stats);
    // The ledger's breaker tallies are the per-card timelines, summed.
    let rejections: u64 = result.card_health.iter().map(|h| h.rejections).sum();
    let failures: u64 = result.card_health.iter().map(|h| h.failures).sum();
    assert_eq!(result.stats.breaker_rejections, rejections);
    assert_eq!(result.stats.card_failures, failures);
    // Lost and unroutable jobs degrade to the typed cluster errors.
    for (i, err) in &result.failed {
        assert!(
            matches!(
                err,
                JobError::CardLost { .. } | JobError::NoReplica { .. } | JobError::Faulted { .. }
            ),
            "job {i} failed with unexpected error {err}"
        );
    }
    result.stats.goodput()
}

#[test]
fn healthy_fleet_completes_everything() {
    let workload = fleet_workload(300, plan_seed());
    let oracle = serial_oracle(&workload);
    let cluster = Cluster::new(fleet_config());
    let goodput = check_run(&cluster, &workload, &oracle);
    assert_eq!(goodput, 1.0, "healthy fleet must complete every job");
}

#[test]
fn survivors_match_the_oracle_under_any_kill_schedule() {
    let workload = fleet_workload(300, plan_seed());
    let oracle = serial_oracle(&workload);
    // Kill one card at several points in the run, including t = 0
    // (dead at bring-up) and a mid-run crash on two cards at once.
    for (card, frac) in [(0usize, 0.0), (3, 0.35), (5, 0.7)] {
        let plan =
            ClusterFaultPlan::new(plan_seed(), CardFaultRates::ZERO, HORIZON).with_kill(card, frac);
        let cluster = Cluster::new(ClusterConfig {
            plan: Some(plan),
            ..fleet_config()
        });
        let goodput = check_run(&cluster, &workload, &oracle);
        assert!(
            goodput > 0.8,
            "kill ({card}, {frac}) collapsed goodput to {goodput}"
        );
    }
    let plan = ClusterFaultPlan::new(plan_seed(), CardFaultRates::ZERO, HORIZON)
        .with_kill(1, 0.2)
        .with_kill(6, 0.5);
    let cluster = Cluster::new(ClusterConfig {
        plan: Some(plan),
        ..fleet_config()
    });
    check_run(&cluster, &workload, &oracle);
}

#[test]
fn same_seed_reproduces_the_run_exactly() {
    let workload = fleet_workload(250, plan_seed());
    let bank = AlgorithmBank::standard();
    let plan = || {
        ClusterFaultPlan::new(plan_seed(), CardFaultRates::uniform(0.08), HORIZON).with_kill(2, 0.4)
    };
    let config = || ClusterConfig {
        plan: Some(plan()),
        trace: TraceConfig::full(),
        ..fleet_config()
    };
    let a = Cluster::new(config()).serve(&workload, &bank).unwrap();
    let b = Cluster::new(config()).serve(&workload, &bank).unwrap();
    assert_eq!(a.stats, b.stats, "ledger must replay exactly");
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.residency, b.residency);
    for (ha, hb) in a.card_health.iter().zip(&b.card_health) {
        assert_eq!(ha.breaker_timeline, hb.breaker_timeline);
        assert_eq!(
            (ha.trips, ha.reopens, ha.probes),
            (hb.trips, hb.reopens, hb.probes)
        );
    }
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(
        ta.to_jsonl(),
        tb.to_jsonl(),
        "trace must replay byte-identically"
    );
    // A different seed must not replay the same fault schedule's
    // ledger (the workload is pinned, so any drift is the plan's).
    let shifted = ClusterFaultPlan::new(plan_seed() ^ 1, CardFaultRates::uniform(0.08), HORIZON);
    let c = Cluster::new(ClusterConfig {
        plan: Some(shifted),
        ..fleet_config()
    })
    .serve(&workload, &bank)
    .unwrap();
    assert!(c.stats.accounted() && c.stats.reconciled());
}

#[test]
fn conservation_holds_under_drawn_fleet_chaos() {
    let workload = fleet_workload(300, plan_seed() ^ 0xFEE7);
    let oracle = serial_oracle(&workload);
    // Seeded draws: crashes, hangs, flaps and SEU pressure all at
    // once, across three derived seeds.
    for salt in [0u64, 1, 2] {
        let rates = CardFaultRates {
            crash: 0.08,
            hang: 0.10,
            flap: 0.10,
            seu_pressure: 0.25,
            ..CardFaultRates::ZERO
        };
        let plan = ClusterFaultPlan::new(plan_seed().wrapping_add(salt), rates, HORIZON);
        let cluster = Cluster::new(ClusterConfig {
            plan: Some(plan),
            ..fleet_config()
        });
        check_run(&cluster, &workload, &oracle);
    }
}

#[test]
fn flapping_card_escalates_and_still_balances() {
    let workload = fleet_workload(400, plan_seed());
    let oracle = serial_oracle(&workload);
    // One card flaps faster than the breaker's penalty period: the
    // breaker must escalate (reopens) and the ledger must still
    // balance, with the flapping card's failures reconciled.
    let flap = CardFault::Flap {
        from: SimTime::from_us(50),
        period: SimTime::from_us(120),
        downtime: SimTime::from_us(60),
    };
    let plan =
        ClusterFaultPlan::new(plan_seed(), CardFaultRates::ZERO, HORIZON).with_fault(2, Some(flap));
    let cluster = Cluster::new(ClusterConfig {
        plan: Some(plan),
        ..fleet_config()
    });
    let bank = AlgorithmBank::standard();
    let result = cluster.serve(&workload, &bank).unwrap();
    assert!(result.stats.accounted(), "{:?}", result.stats);
    assert!(result.stats.reconciled(), "{:?}", result.stats);
    let health = &result.card_health[2];
    // 50 us onset, 120 us period over the 800 us horizon: six full
    // cycles, so the card must have bounced at least five times.
    assert!(
        health.down_edges >= 5,
        "flap produced only {} down edges",
        health.down_edges
    );
    assert!(
        result.stats.failovers + result.stats.hedges > 0,
        "router never redirected around the flapping card"
    );
    check_run(&cluster, &workload, &oracle);
}

#[test]
fn dead_card_emits_health_edges_and_failover_trace() {
    let workload = fleet_workload(200, plan_seed());
    let bank = AlgorithmBank::standard();
    let plan = ClusterFaultPlan::new(plan_seed(), CardFaultRates::ZERO, HORIZON).with_kill(4, 0.25);
    let cluster = Cluster::new(ClusterConfig {
        plan: Some(plan),
        trace: TraceConfig::full(),
        ..fleet_config()
    });
    let result = cluster.serve(&workload, &bank).unwrap();
    let trace = result.trace.expect("tracing on");
    let jsonl = trace.to_jsonl();
    assert!(jsonl.contains("card_down"), "missing card_down event");
    assert_eq!(trace.metrics.counters.card_downs, 1);
    assert_eq!(
        trace.metrics.counters.failovers + trace.metrics.counters.hedges,
        result.stats.failovers + result.stats.hedges,
        "trace counters must match the ledger"
    );
    // Per-shard timestamps stay monotone even though the router emits
    // in processing order.
    for shard_events in trace.events.chunk_by(|a, b| a.shard == b.shard) {
        let mut prev = SimTime::ZERO;
        for e in shard_events {
            assert!(e.ts >= prev, "shard {} went back in time", e.shard);
            prev = e.ts;
        }
    }
}

#[test]
fn seu_pressure_faults_jobs_but_keeps_the_ledger() {
    use aaod_core::FaultConfig;
    use aaod_sim::{FaultPlan, FaultRates};
    let workload = fleet_workload(300, plan_seed());
    let bank = AlgorithmBank::standard();
    // Engine-level SEU faults with zero retries, elevated on the
    // cards the plan marks as high-pressure.
    let template = FaultConfig {
        max_retries: 0,
        ..FaultConfig::new(FaultPlan::new(plan_seed(), FaultRates::uniform(0.02)))
    };
    let rates = CardFaultRates {
        seu_pressure: 0.5,
        ..CardFaultRates::ZERO
    };
    let plan = ClusterFaultPlan::new(plan_seed(), rates, HORIZON);
    let cluster = Cluster::new(ClusterConfig {
        plan: Some(plan),
        card_faults: Some(template),
        ..fleet_config()
    });
    let result = cluster.serve(&workload, &bank).unwrap();
    assert!(result.stats.accounted(), "{:?}", result.stats);
    assert!(result.stats.reconciled(), "{:?}", result.stats);
    assert!(
        result.stats.faulted > 0,
        "SEU plan at 8% per request never faulted a job"
    );
    assert_eq!(
        result.stats.faulted,
        result
            .failed
            .values()
            .filter(|e| matches!(e, JobError::Faulted { .. }))
            .count() as u64
    );
}

#[test]
fn deadline_budget_sheds_instead_of_collapsing() {
    let workload = fleet_workload(300, plan_seed());
    let bank = AlgorithmBank::standard();
    // A tight deadline with a killed card: backoff pushes some jobs
    // past their budget; they must shed or miss, never vanish.
    let plan = ClusterFaultPlan::new(plan_seed(), CardFaultRates::ZERO, HORIZON).with_kill(0, 0.0);
    let cluster = Cluster::new(ClusterConfig {
        plan: Some(plan),
        deadline: Some(SimTime::from_us(120)),
        ..fleet_config()
    });
    let result = cluster.serve(&workload, &bank).unwrap();
    assert!(result.stats.accounted(), "{:?}", result.stats);
    assert!(result.stats.reconciled(), "{:?}", result.stats);
    assert!(
        result.stats.completed > 0,
        "deadline pressure must degrade gracefully, not collapse"
    );
    assert_eq!(
        result.stats.shed + result.stats.deadline_missed,
        (result.shed.len() + result.deadline_missed.len()) as u64
    );
}

#[test]
fn residency_replicates_hot_algorithms_only() {
    let workload = fleet_workload(400, plan_seed());
    let bank = AlgorithmBank::standard();
    let cluster = Cluster::new(fleet_config());
    let result = cluster.serve(&workload, &bank).unwrap();
    let mut replica_counts = std::collections::BTreeMap::new();
    for residency in &result.residency {
        for &algo in residency {
            *replica_counts.entry(algo).or_insert(0usize) += 1;
        }
    }
    // Every workload algorithm is resident somewhere; at least one is
    // replicated and at least one stays single-resident.
    for algo in workload.distinct_algos() {
        assert!(replica_counts.contains_key(&algo), "algo {algo} unplaced");
    }
    assert!(
        replica_counts.values().any(|&c| c > 1),
        "no algorithm was replicated: {replica_counts:?}"
    );
    assert!(
        replica_counts.values().any(|&c| c == 1),
        "every algorithm was replicated: {replica_counts:?}"
    );
}

#[test]
fn empty_workload_yields_an_empty_balanced_result() {
    let bank = AlgorithmBank::standard();
    let workload = Workload::from_trace(std::iter::empty(), 8);
    let cluster = Cluster::new(fleet_config());
    let result = cluster.serve(&workload, &bank).unwrap();
    assert_eq!(result.requests, 0);
    assert!(result.stats.accounted());
    assert!(result.stats.reconciled());
    assert_eq!(result.goodput(), 1.0);
}

#[test]
#[should_panic(expected = "cluster needs 2..=64 cards")]
fn oversized_fleet_is_rejected() {
    let _ = Cluster::new(ClusterConfig {
        cards: 65,
        ..ClusterConfig::default()
    });
}

//! Dynamic-dispatch regression tests (E15): the work-stealing planner
//! of [`ShardPolicy::Dynamic`] must *win* on the adversarial straggler
//! mix and must stay a pure function of the workload — byte-identical
//! outputs, repeatable counters, and a trace whose dispatch/steal
//! events reconcile exactly with the planner's statistics.
//!
//! The invariants under test:
//!
//! * **makespan win** — on the straggler mix (a compute-dense hot
//!   algorithm hiding behind a small byte share) the dynamic planner
//!   beats both static policies, and beats `Balanced` by at least the
//!   1.2× floor the E15 experiment commits to;
//! * **correctness** — outputs are byte-identical to the serial
//!   reference at every worker count;
//! * **determinism** — two runs produce identical results, dispatch
//!   statistics included, and the trace stream is byte-identical;
//! * **reconciliation** — every job gets exactly one `dispatch` trace
//!   event, steal events chain `deal target → … → final shard`, and
//!   the event counts equal [`aaod_core::DispatchStats`];
//! * **conservation** — under an overloaded arrival process the
//!   terminal-state identity `submitted == completed + shed +
//!   deadline_missed + faulted` still holds with dynamic dispatch.
//!
//! The workload seed is taken from `AAOD_DISPATCH_SEED` when set (the
//! CI dispatch matrix sweeps it) and falls back to a fixed default.

use aaod_core::{
    CoProcessor, DeadlinePolicy, Engine, EngineConfig, EngineResult, OverloadConfig, ShardPolicy,
    TraceConfig,
};
use aaod_sim::trace::EventKind;
use aaod_sim::SimTime;
use aaod_workload::{mixes, Workload};
use std::collections::BTreeMap;

/// Workload seed: `AAOD_DISPATCH_SEED` if set, else fixed.
fn dispatch_seed() -> u64 {
    aaod_bench::env_seed("AAOD_DISPATCH_SEED", 0xD15)
}

/// The canonical adversarial mix for this suite. 1000 requests: long
/// enough that replicating the hot algorithm amortizes its
/// reconfiguration on every seed the CI matrix sweeps.
fn straggler() -> Workload {
    mixes::straggler_workload(1000, dispatch_seed())
}

/// Serial reference outputs on one card (install is bring-up, not
/// serving time, so every distinct algorithm is installed first).
fn serial_reference(workload: &Workload) -> Vec<Vec<u8>> {
    let mut cp = CoProcessor::default();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    workload
        .requests()
        .iter()
        .enumerate()
        .map(|(i, req)| cp.invoke(req.algo_id, &workload.input(i)).unwrap().0)
        .collect()
}

fn serve(policy: ShardPolicy, workers: usize, workload: &Workload) -> EngineResult {
    Engine::new(EngineConfig {
        workers,
        verify: true,
        shard: policy,
        ..EngineConfig::default()
    })
    .serve(workload)
    .expect("serve")
}

/// The E15 headline: on the straggler mix at 4 workers the dynamic
/// planner beats `Balanced` by at least the experiment's 1.2× floor,
/// and beats `AlgoModulo` (which pins the hot algorithm to one shard
/// by construction) at least as much.
#[test]
fn dynamic_beats_static_policies_on_straggler_mix() {
    let workload = straggler();
    let dynamic = serve(ShardPolicy::Dynamic, 4, &workload);
    let balanced = serve(ShardPolicy::Balanced, 4, &workload);
    let modulo = serve(ShardPolicy::AlgoModulo, 4, &workload);

    let dyn_ps = dynamic.makespan.as_ps();
    assert!(dyn_ps > 0, "empty makespan");
    let vs_balanced = balanced.makespan.as_ps() as f64 / dyn_ps as f64;
    let vs_modulo = modulo.makespan.as_ps() as f64 / dyn_ps as f64;
    assert!(
        vs_balanced >= 1.2,
        "dynamic vs balanced speedup {vs_balanced:.3} below the 1.2x floor \
         (dynamic {dyn_ps} ps, balanced {} ps)",
        balanced.makespan.as_ps()
    );
    assert!(
        vs_modulo >= 1.2,
        "dynamic vs algo-modulo speedup {vs_modulo:.3} below the 1.2x floor"
    );
    // The win comes from spreading the hot algorithm, which requires
    // actual planner activity: deals for every job, and at least one
    // affinity hit (the mix has long same-algorithm runs).
    assert_eq!(dynamic.dispatch.dealt, workload.len() as u64);
    assert!(dynamic.dispatch.affinity_hits > 0, "no affinity reuse");
    // Static policies never deal or steal.
    assert_eq!(balanced.dispatch, Default::default());
    assert_eq!(modulo.dispatch, Default::default());
}

/// Outputs under dynamic dispatch are byte-identical to the serial
/// reference at every worker count — stealing moves jobs between
/// queues but never reorders results or corrupts bytes.
#[test]
fn dynamic_outputs_match_serial_at_every_width() {
    let workload = straggler();
    let expected = serial_reference(&workload);
    for workers in [1, 2, 3, 4, 7] {
        let r = serve(ShardPolicy::Dynamic, workers, &workload);
        assert_eq!(
            r.outputs.as_ref().unwrap(),
            &expected,
            "{workers}-worker dynamic outputs diverged from serial"
        );
        assert_eq!(r.requests, workload.len());
        assert_eq!(r.dispatch.dealt, workload.len() as u64);
        if workers == 1 {
            // A single shard has nobody to steal from.
            assert_eq!(r.dispatch.steals, 0, "single-worker run stole");
        }
    }
}

/// Two runs of the same (workload, config) are identical in every
/// observable: outputs, timings, and the planner's own statistics.
#[test]
fn dynamic_run_is_repeatable() {
    let workload = straggler();
    let a = serve(ShardPolicy::Dynamic, 4, &workload);
    let b = serve(ShardPolicy::Dynamic, 4, &workload);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.per_request_hit, b.per_request_hit);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.shard_busy, b.shard_busy);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.dispatch, b.dispatch);
}

/// Traced run: the dispatch/steal event stream reconciles exactly
/// with the planner statistics, and per job the chain
/// `dispatch.to → steal.from → steal.to → … → enqueue.to` is
/// consistent — each steal's `from` is the job's current owner and
/// the last owner is the shard that enqueued it.
#[test]
fn trace_events_reconcile_with_dispatch_stats() {
    // Pinned seed, independent of `AAOD_DISPATCH_SEED`: whether the
    // amortized bundle steal fires is seed-dependent (the deal must
    // leave a gap wide enough to pay for the thief's reconfiguration),
    // and seed 1 is a known steal-producing instance. The
    // reconciliation equalities below hold for any workload; the
    // pinned seed is what makes the `steals > 0` leg meaningful.
    let workload = mixes::straggler_workload(1000, 1);
    let r = Engine::new(EngineConfig {
        workers: 4,
        verify: true,
        shard: ShardPolicy::Dynamic,
        trace: TraceConfig::full(),
        ..EngineConfig::default()
    })
    .serve(&workload)
    .expect("traced serve");
    let trace = r.trace.as_ref().expect("trace requested");
    assert_eq!(trace.dropped, 0, "ring buffer dropped events");

    let c = &trace.metrics.counters;
    assert_eq!(c.dispatched, workload.len() as u64);
    assert_eq!(c.dispatched, r.dispatch.dealt);
    assert_eq!(c.affinity_dispatches, r.dispatch.affinity_hits);
    assert_eq!(c.steals, r.dispatch.steals);
    assert_eq!(c.enqueued, workload.len() as u64);

    // Replay the producer's event stream per job. Steals are narrated
    // at their trigger index, which is always *after* the stolen job's
    // own enqueue (the enqueue already reflects the final assignment),
    // so the enqueue target is checked against the fully-replayed
    // owner chain at the end rather than mid-stream.
    let mut owner: BTreeMap<u64, u32> = BTreeMap::new();
    let mut dispatches: BTreeMap<u64, u32> = BTreeMap::new();
    let mut enqueued_on: BTreeMap<u64, u32> = BTreeMap::new();
    let mut steal_events = 0u64;
    for e in &trace.events {
        match e.kind {
            EventKind::Dispatch { job, to, .. } => {
                assert!(
                    dispatches.insert(job, to).is_none(),
                    "job {job} dealt twice"
                );
                owner.insert(job, to);
            }
            EventKind::Steal { job, from, to, .. } => {
                steal_events += 1;
                let prev = owner.insert(job, to);
                assert_eq!(
                    prev,
                    Some(from),
                    "steal of job {job} does not chain from its owner"
                );
            }
            EventKind::Enqueue { job, to, .. } => {
                assert!(
                    enqueued_on.insert(job, to).is_none(),
                    "job {job} enqueued twice"
                );
            }
            _ => {}
        }
    }
    assert_eq!(dispatches.len(), workload.len(), "one deal per job");
    assert_eq!(enqueued_on.len(), workload.len(), "one enqueue per job");
    for (job, shard) in &enqueued_on {
        assert_eq!(
            owner.get(job),
            Some(shard),
            "job {job}: owner chain does not terminate at the enqueueing shard"
        );
    }
    assert_eq!(steal_events, r.dispatch.steals, "steal events vs counter");
    // Seed 1 is adversarial enough that the planner actually steals,
    // so the chain replay above exercised the steal path for real.
    assert!(r.dispatch.steals > 0, "pinned mix produced no steals");

    // The trace itself is part of the determinism contract.
    let again = Engine::new(EngineConfig {
        workers: 4,
        verify: true,
        shard: ShardPolicy::Dynamic,
        trace: TraceConfig::full(),
        ..EngineConfig::default()
    })
    .serve(&workload)
    .expect("traced serve");
    assert_eq!(
        trace.to_jsonl(),
        again.trace.as_ref().unwrap().to_jsonl(),
        "dynamic trace stream is not byte-stable"
    );
}

/// Dynamic dispatch composes with the overload layer: under a tight
/// arrival process with an absolute deadline covering a quarter of
/// the serial work, every submitted job still lands in exactly one
/// terminal state, some work is shed and some completes.
#[test]
fn dynamic_conserves_jobs_under_overload() {
    let workload = straggler();
    // Total serial service time sizes the deadline budget, exactly
    // like the engine_overload suite does.
    let mut cp = CoProcessor::default();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    let mut total = SimTime::ZERO;
    for (i, req) in workload.requests().iter().enumerate() {
        let (_, report) = cp.invoke(req.algo_id, &workload.input(i)).unwrap();
        total += report.total();
    }
    // A 4-worker pool cannot finish faster than ~serial/4, so a
    // budget of serial/8 forces the tail to shed while the early jobs
    // on every shard still complete comfortably.
    let budget = SimTime::from_ps((total.as_ps() / 8).max(1));
    let r = Engine::new(EngineConfig {
        workers: 4,
        verify: true,
        shard: ShardPolicy::Dynamic,
        overload: Some(OverloadConfig {
            // Everything arrives almost at once against a budget the
            // pool cannot meet: early jobs finish, the tail is shed
            // at admission.
            interarrival: SimTime::from_ns(1),
            deadline: DeadlinePolicy::Absolute(budget),
            ..OverloadConfig::default()
        }),
        ..EngineConfig::default()
    })
    .serve(&workload)
    .expect("overloaded serve");
    assert!(r.overload.accounted(), "leaked jobs: {:?}", r.overload);
    assert_eq!(r.overload.submitted, workload.len() as u64);
    assert_eq!(r.overload.shed, r.shed.len() as u64);
    assert_eq!(r.overload.deadline_missed, r.deadline_missed.len() as u64);
    assert!(
        r.overload.shed > 0,
        "4x offered load must shed: {:?}",
        r.overload
    );
    assert!(
        r.overload.completed > 0,
        "overloaded dynamic pool collapsed to zero goodput"
    );
    // Surviving outputs are still byte-exact.
    let expected = serial_reference(&workload);
    let outputs = r.outputs.as_ref().expect("outputs collected");
    for (i, (got, want)) in outputs.iter().zip(&expected).enumerate() {
        let dropped = r.shed.contains_key(&i)
            || r.deadline_missed.contains_key(&i)
            || r.failed.contains_key(&i);
        if dropped {
            assert!(got.is_empty(), "dropped job {i} left bytes behind");
        } else {
            assert_eq!(got, want, "surviving output {i} corrupted");
        }
    }
}

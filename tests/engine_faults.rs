//! Engine-level fault-injection tests: deterministic chaos through
//! the full serving pool.
//!
//! The invariants under test are the contract of the fault layer:
//!
//! * **no silent corruption** — every output that survives a chaos
//!   run is byte-identical to the fault-free serial run (`verify` is
//!   also on, so the golden model checks every byte in-flight);
//! * **full accounting** — every activated fault is resolved exactly
//!   once: `injected == scrubbed + redownloads + pci_retried +
//!   evict_cleared + faults_failed`;
//! * **determinism** — the same seed reproduces the identical report,
//!   and the fault *schedule* is a pure function of the request
//!   index, independent of shard policy and pool width.
//!
//! The plan seed is taken from `AAOD_FAULT_SEED` when set (the CI
//! fault matrix sweeps it) and falls back to a fixed default.

use aaod_core::{CoProcessor, Engine, EngineConfig, EngineResult, FaultConfig, ShardPolicy};
use aaod_sim::{FaultPlan, FaultRates};
use aaod_workload::Workload;

/// Seed for the fault plan: `AAOD_FAULT_SEED` if set, else fixed.
fn plan_seed() -> u64 {
    aaod_bench::env_seed("AAOD_FAULT_SEED", 0xFA117)
}

/// The standard chaos workload: skewed traffic over a working set
/// that fits the default device.
fn chaos_workload() -> Workload {
    use aaod_algos::ids;
    Workload::zipf(
        &[ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA],
        160,
        1.1,
        48,
        29,
    )
}

/// Fault-free serial baseline: the byte-exact outputs chaos runs are
/// held to.
fn serial_baseline(workload: &Workload) -> Vec<Vec<u8>> {
    let mut cp = CoProcessor::default();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    workload
        .requests()
        .iter()
        .enumerate()
        .map(|(i, req)| cp.invoke(req.algo_id, &workload.input(i)).unwrap().0)
        .collect()
}

fn chaos_config(workers: usize, shard: ShardPolicy, faults: FaultConfig) -> EngineConfig {
    EngineConfig {
        workers,
        verify: true,
        shard,
        faults: Some(faults),
        ..EngineConfig::default()
    }
}

/// Asserts the chaos run's surviving outputs equal the serial
/// baseline byte for byte, and that failed jobs left empty slots.
fn assert_survivors_match(r: &EngineResult, baseline: &[Vec<u8>], label: &str) {
    let outputs = r.outputs.as_ref().expect("outputs collected");
    assert_eq!(outputs.len(), baseline.len(), "{label}: output slot count");
    for (i, (got, want)) in outputs.iter().zip(baseline).enumerate() {
        if r.failed.contains_key(&i) {
            assert!(got.is_empty(), "{label}: failed job {i} left bytes behind");
        } else {
            assert_eq!(got, want, "{label}: surviving output {i} corrupted");
        }
    }
}

/// A nonzero fault plan completes without panic, survivors are
/// byte-identical to the fault-free serial run, and every activated
/// fault is accounted for.
#[test]
fn chaos_survivors_match_fault_free_serial_run() {
    let w = chaos_workload();
    let baseline = serial_baseline(&w);
    let plan = FaultPlan::new(plan_seed(), FaultRates::uniform(0.05));
    let r = Engine::new(chaos_config(
        3,
        ShardPolicy::AlgoModulo,
        FaultConfig::new(plan),
    ))
    .serve(&w)
    .unwrap();
    assert!(
        r.faults.injected > 0,
        "20% total fault rate over 160 jobs must land something"
    );
    assert!(r.faults.accounted(), "unaccounted faults: {:?}", r.faults);
    assert!(
        r.failed.is_empty(),
        "default retry budget recovers everything: {:?}",
        r.failed
    );
    assert_survivors_match(&r, &baseline, "chaos");
    assert!(
        r.recovery_latency.count() > 0,
        "recoveries must record their latency"
    );
    assert!(r.makespan > aaod_sim::SimTime::ZERO);
}

/// The same seed reproduces the identical report — outputs, failure
/// map, fault ledger, timing — across two runs.
#[test]
fn same_seed_reproduces_identical_report() {
    let w = chaos_workload();
    let plan = FaultPlan::new(plan_seed(), FaultRates::uniform(0.06));
    let run = || {
        Engine::new(chaos_config(
            2,
            ShardPolicy::Balanced,
            FaultConfig::new(plan),
        ))
        .serve(&w)
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outputs, b.outputs, "outputs diverged across reruns");
    assert_eq!(a.per_request_hit, b.per_request_hit);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.faults, b.faults, "fault ledger diverged");
    assert_eq!(a.stats, b.stats, "controller stats diverged");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.shard_busy, b.shard_busy);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.recovery_latency, b.recovery_latency);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.coalesced, b.coalesced);
}

/// The fault *schedule* is a pure function of (seed, request index):
/// however the pool is sharded, the same requests draw faults, so
/// `injected + inert` — and the correctness invariants — hold across
/// every policy and width.
#[test]
fn fault_schedule_invariant_across_shard_policies() {
    let w = chaos_workload();
    let baseline = serial_baseline(&w);
    let plan = FaultPlan::new(plan_seed(), FaultRates::uniform(0.05));
    let scheduled = plan.scheduled_in(w.len() as u64) as u64;
    assert!(scheduled > 0);
    for shard in [
        ShardPolicy::AlgoModulo,
        ShardPolicy::RoundRobin,
        ShardPolicy::Balanced,
    ] {
        for workers in [1, 2, 4] {
            let label = format!("{} x{workers}", shard.name());
            let r = Engine::new(chaos_config(workers, shard, FaultConfig::new(plan)))
                .serve(&w)
                .unwrap();
            assert_eq!(
                r.faults.injected + r.faults.inert,
                scheduled,
                "{label}: schedule is index-pure, sharding must not change it"
            );
            assert!(r.faults.accounted(), "{label}: {:?}", r.faults);
            assert_survivors_match(&r, &baseline, &label);
        }
    }
}

/// With the retry budget zeroed, jobs whose fault is detected degrade
/// to typed errors instead of aborting the run — and the ledger still
/// balances.
#[test]
fn exhausted_retries_degrade_to_typed_errors() {
    let w = chaos_workload();
    let baseline = serial_baseline(&w);
    let plan = FaultPlan::new(
        plan_seed(),
        FaultRates {
            // frame corruption only: detected at next use, unrecoverable
            // with zero retries
            frame_bit_flip: 0.3,
            ..FaultRates::ZERO
        },
    );
    let mut cfg = FaultConfig::new(plan);
    cfg.max_retries = 0;
    let r = Engine::new(chaos_config(2, ShardPolicy::AlgoModulo, cfg))
        .serve(&w)
        .unwrap();
    assert!(
        !r.failed.is_empty(),
        "30% frame-flip rate with no retries must degrade something"
    );
    assert_eq!(r.faults.failed_jobs, r.failed.len() as u64);
    assert!(r.faults.faults_failed > 0);
    assert_eq!(r.faults.retries, 0, "budget is zero, nothing may retry");
    assert!(r.faults.accounted(), "{:?}", r.faults);
    for (&index, err) in &r.failed {
        assert!(index < w.len());
        assert_eq!(err.attempts(), 0);
        assert!(
            w.requests().iter().any(|req| req.algo_id == err.algo_id()),
            "error names an algorithm outside the workload"
        );
        let msg = err.to_string();
        assert!(msg.contains("failed after 0 recovery attempts"), "{msg}");
    }
    assert_survivors_match(&r, &baseline, "degraded");
}

/// Requeueing rescues degraded jobs on a fresh spare card: the run
/// ends with every output produced and byte-exact.
#[test]
fn requeue_rescues_degraded_jobs() {
    let w = chaos_workload();
    let baseline = serial_baseline(&w);
    let plan = FaultPlan::new(
        plan_seed(),
        FaultRates {
            frame_bit_flip: 0.3,
            ..FaultRates::ZERO
        },
    );
    let mut cfg = FaultConfig::new(plan);
    cfg.max_retries = 0;
    cfg.requeue = true;
    let r = Engine::new(chaos_config(2, ShardPolicy::AlgoModulo, cfg))
        .serve(&w)
        .unwrap();
    assert!(
        r.faults.requeues > 0,
        "the spare card must have rescued jobs"
    );
    assert!(
        r.failed.is_empty(),
        "requeue rescues every degraded job: {:?}",
        r.failed
    );
    assert_eq!(
        r.outputs.as_ref().unwrap(),
        &baseline,
        "rescued run must be byte-identical to the serial baseline"
    );
    assert!(r.faults.accounted(), "{:?}", r.faults);
}

/// PCI transients recover inside the driver: no job fails, no retry
/// budget is burned, and every abort is accounted as `pci_retried`.
#[test]
fn pci_transients_recover_in_the_driver() {
    let w = chaos_workload();
    let baseline = serial_baseline(&w);
    let plan = FaultPlan::new(
        plan_seed(),
        FaultRates {
            pci_transient: 0.25,
            ..FaultRates::ZERO
        },
    );
    let mut cfg = FaultConfig::new(plan);
    cfg.max_retries = 0; // driver retries are not budgeted
    let r = Engine::new(chaos_config(2, ShardPolicy::RoundRobin, cfg))
        .serve(&w)
        .unwrap();
    assert!(r.faults.injected > 0);
    assert_eq!(r.faults.pci_transients, r.faults.injected);
    assert_eq!(r.faults.pci_retried, r.faults.injected);
    assert_eq!(r.faults.failed_jobs, 0, "transients never fail a job");
    assert!(r.faults.accounted(), "{:?}", r.faults);
    assert!(r.failed.is_empty());
    assert_survivors_match(&r, &baseline, "pci");
}

//! Engine-level overload tests: deadlines, admission control, latency
//! faults, the watchdog and per-shard circuit breakers, all in
//! modelled time.
//!
//! The invariants under test are the contract of the overload layer:
//!
//! * **job conservation** — every submitted job ends in exactly one
//!   terminal state: `shed + deadline_missed + completed + faulted ==
//!   submitted` ([`aaod_core::OverloadStats::accounted`]);
//! * **no silent corruption** — every output that completes within
//!   deadline is byte-identical to the fault-free serial run;
//! * **graceful degradation** — an overloaded pool sheds work instead
//!   of collapsing: goodput stays positive at any offered load;
//! * **determinism** — the same (workload, plan, seed) reproduces the
//!   identical result, counters and health timelines included.
//!
//! The latency-plan seed is taken from `AAOD_OVERLOAD_SEED` when set
//! (the CI overload matrix sweeps it) and falls back to a fixed
//! default.

use aaod_core::{
    BreakerConfig, BreakerState, CoProcessor, DeadlinePolicy, Engine, EngineConfig, EngineResult,
    FaultConfig, OverloadConfig, ShardPolicy, WatchdogConfig,
};
use aaod_sim::{FaultPlan, FaultRates, LatencyRates, SimTime};
use aaod_workload::Workload;

/// Seed for the fault plan: `AAOD_OVERLOAD_SEED` if set, else fixed.
fn plan_seed() -> u64 {
    aaod_bench::env_seed("AAOD_OVERLOAD_SEED", 0x0D10AD)
}

/// Skewed traffic over a working set that fits the default device.
fn overload_workload() -> Workload {
    use aaod_algos::ids;
    Workload::zipf(
        &[ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA],
        200,
        1.1,
        48,
        31,
    )
}

/// Fault-free serial baseline: byte-exact outputs and the total
/// modelled service time of the whole workload on one card.
fn serial_baseline(workload: &Workload) -> (Vec<Vec<u8>>, SimTime) {
    let mut cp = CoProcessor::default();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    let mut outs = Vec::new();
    let mut total = SimTime::ZERO;
    for (i, req) in workload.requests().iter().enumerate() {
        let (out, report) = cp.invoke(req.algo_id, &workload.input(i)).unwrap();
        total += report.total();
        outs.push(out);
    }
    (outs, total)
}

fn overload_config(interarrival: SimTime, deadline: DeadlinePolicy) -> OverloadConfig {
    OverloadConfig {
        interarrival,
        deadline,
        watchdog: WatchdogConfig::default(),
        breaker: BreakerConfig::default(),
        fairness: None,
    }
}

fn engine(workers: usize, oc: OverloadConfig, faults: Option<FaultConfig>) -> Engine {
    Engine::new(EngineConfig {
        workers,
        verify: true,
        shard: ShardPolicy::AlgoModulo,
        overload: Some(oc),
        faults,
        ..EngineConfig::default()
    })
}

/// Asserts the conservation identity both through the stats and
/// through the per-index maps the engine reassembled.
fn assert_conserved(r: &EngineResult) {
    assert!(r.overload.accounted(), "leaked jobs: {:?}", r.overload);
    assert_eq!(r.overload.submitted, r.requests as u64, "all jobs counted");
    assert_eq!(r.overload.shed, r.shed.len() as u64);
    assert_eq!(r.overload.deadline_missed, r.deadline_missed.len() as u64);
    assert_eq!(r.overload.faulted, r.failed.len() as u64);
    for &i in r.shed.keys() {
        assert!(
            !r.deadline_missed.contains_key(&i) && !r.failed.contains_key(&i),
            "job {i} in two terminal states"
        );
    }
}

/// Asserts every completed job's output is byte-identical to the
/// fault-free serial run, and every non-completed slot is empty.
fn assert_survivors_match(r: &EngineResult, baseline: &[Vec<u8>], label: &str) {
    let outputs = r.outputs.as_ref().expect("outputs collected");
    assert_eq!(outputs.len(), baseline.len(), "{label}: output slot count");
    for (i, (got, want)) in outputs.iter().zip(baseline).enumerate() {
        let terminal_error = r.shed.contains_key(&i)
            || r.deadline_missed.contains_key(&i)
            || r.failed.contains_key(&i);
        if terminal_error {
            assert!(got.is_empty(), "{label}: dropped job {i} left bytes behind");
        } else {
            assert_eq!(got, want, "{label}: surviving output {i} corrupted");
        }
    }
}

/// With generous absolute deadlines and no faults, the overload layer
/// is a no-op: everything completes in time, byte-exact.
#[test]
fn generous_deadlines_complete_everything() {
    let w = overload_workload();
    let (baseline, _) = serial_baseline(&w);
    let oc = overload_config(
        SimTime::from_us(100),
        DeadlinePolicy::Absolute(SimTime::from_secs(10)),
    );
    let r = engine(3, oc, None).serve(&w).unwrap();
    assert_conserved(&r);
    assert_eq!(r.overload.completed, 200);
    assert_eq!(r.overload.shed, 0);
    assert_eq!(r.overload.deadline_missed, 0);
    assert_eq!(r.goodput(), 1.0);
    assert_eq!(r.deadline_budget, Some(SimTime::from_secs(10)));
    assert_eq!(r.sojourn.count(), 200, "every completion has a sojourn");
    assert_survivors_match(&r, &baseline, "generous");
    assert_eq!(r.shard_health.len(), 3);
    for timeline in &r.shard_health {
        assert_eq!(
            timeline.as_slice(),
            &[(SimTime::ZERO, BreakerState::Closed)],
            "healthy run must leave every breaker closed"
        );
    }
}

/// A pool offered several times its capacity sheds late work at
/// admission instead of collapsing: goodput stays positive, sheds are
/// counted, and survivors stay byte-exact.
#[test]
fn overloaded_pool_sheds_gracefully() {
    let w = overload_workload();
    let (baseline, total) = serial_baseline(&w);
    // Everything arrives almost at once; the budget covers roughly a
    // quarter of the serial work, so each shard completes its early
    // jobs and sheds the tail.
    let budget = SimTime::from_ps((total.as_ps() / 4).max(1));
    let oc = overload_config(SimTime::from_ns(1), DeadlinePolicy::Absolute(budget));
    let r = engine(2, oc, None).serve(&w).unwrap();
    assert_conserved(&r);
    assert!(
        r.overload.shed > 0,
        "4x offered load must shed: {:?}",
        r.overload
    );
    assert!(
        r.overload.completed > 0,
        "overload must not collapse goodput to zero"
    );
    assert!(r.goodput() > 0.0 && r.goodput() < 1.0);
    assert_eq!(
        r.latency.count() as u64,
        r.requests as u64 - r.overload.shed,
        "shed jobs were never served, everything else was"
    );
    assert_survivors_match(&r, &baseline, "overloaded");
}

/// Stuck cards burn the watchdog timeout, get reset, and the job is
/// re-served from the cold card — with generous deadlines everything
/// still completes byte-exact, and no controller work is lost from
/// the merged stats despite the resets zeroing each card's counters.
#[test]
fn stuck_cards_trigger_watchdog_resets() {
    let w = overload_workload();
    let (baseline, _) = serial_baseline(&w);
    let latency = LatencyRates {
        stuck_card: 0.1,
        ..LatencyRates::ZERO
    };
    let plan = FaultPlan::new(plan_seed(), FaultRates::ZERO).with_latency(latency);
    let scheduled = plan.latency_scheduled_in(w.len() as u64);
    assert!(scheduled > 0, "10% stuck rate over 200 jobs must schedule");
    let oc = overload_config(
        SimTime::from_us(100),
        DeadlinePolicy::Absolute(SimTime::from_secs(100)),
    );
    let r = engine(2, oc, Some(FaultConfig::new(plan)))
        .serve(&w)
        .unwrap();
    assert_conserved(&r);
    assert_eq!(r.overload.completed, 200, "deadlines are generous");
    assert_eq!(r.overload.stuck_injected as usize, scheduled);
    assert_eq!(r.overload.watchdog_resets as usize, scheduled);
    assert!(r.overload.wasted_time >= oc.watchdog.timeout() * scheduled as u64);
    assert_eq!(
        r.stats.requests, 200,
        "watchdog resets must not lose controller stats"
    );
    assert_survivors_match(&r, &baseline, "stuck");
}

/// Every scheduled latency fault is consumed or explicitly inert:
/// `stalls + slow transfers + stuck + inert == scheduled`.
#[test]
fn latency_faults_are_fully_accounted() {
    let w = overload_workload();
    let (baseline, _) = serial_baseline(&w);
    let plan =
        FaultPlan::new(plan_seed(), FaultRates::ZERO).with_latency(LatencyRates::uniform(0.06));
    let scheduled = plan.latency_scheduled_in(w.len() as u64) as u64;
    assert!(scheduled > 0);
    let oc = overload_config(
        SimTime::from_us(100),
        DeadlinePolicy::Absolute(SimTime::from_secs(100)),
    );
    let r = engine(3, oc, Some(FaultConfig::new(plan)))
        .serve(&w)
        .unwrap();
    assert_conserved(&r);
    let consumed =
        r.overload.stalls_injected + r.overload.slow_transfers_injected + r.overload.stuck_injected;
    assert_eq!(
        consumed + r.overload.latency_inert,
        scheduled,
        "latency ledger leaked: {:?}",
        r.overload
    );
    assert!(r.overload.wasted_time > SimTime::ZERO);
    assert_survivors_match(&r, &baseline, "latency");
}

/// Corruption failures trip a shard's breaker; its bounced jobs are
/// rejected while it cools down and every job still lands in exactly
/// one terminal state.
#[test]
fn breaker_quarantines_failing_shard() {
    let w = overload_workload();
    let plan = FaultPlan::new(plan_seed(), FaultRates::uniform(0.05));
    let mut fc = FaultConfig::new(plan);
    fc.max_retries = 0; // every landed fault fails its job
    let oc = OverloadConfig {
        interarrival: SimTime::from_us(100),
        deadline: DeadlinePolicy::Absolute(SimTime::from_secs(100)),
        watchdog: WatchdogConfig::default(),
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown: SimTime::from_secs(1), // stays open for the run
            ..BreakerConfig::default()
        },
        fairness: None,
    };
    let r = engine(3, oc, Some(fc)).serve(&w).unwrap();
    assert_conserved(&r);
    assert!(
        r.overload.faulted > 0,
        "5% rate, no retries: jobs must fail"
    );
    assert!(r.overload.breaker_trips > 0, "threshold 1 must trip");
    assert!(
        r.overload.breaker_rejections > 0,
        "an open breaker must bounce followers"
    );
    assert!(
        r.overload.redistributed + r.overload.shed >= 1,
        "bounced jobs must be resolved by redistribution or shed: {:?}",
        r.overload
    );
    let opened = r
        .shard_health
        .iter()
        .any(|t| t.iter().any(|&(_, s)| s == BreakerState::Open));
    assert!(opened, "health timeline must record the trip");
}

/// The requeue rescue pass respects the remaining deadline budget:
/// with deadlines that all expire before the pool drains nothing is
/// rescued, with generous deadlines every failed job is.
#[test]
fn requeue_rescue_respects_deadline_budget() {
    let w = overload_workload();
    let (_, total) = serial_baseline(&w);
    let plan = FaultPlan::new(plan_seed(), FaultRates::uniform(0.05));
    let mut fc = FaultConfig::new(plan);
    fc.max_retries = 0;
    fc.requeue = true;
    // a breaker that never trips keeps this test about the rescue pass
    let breaker = BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown: SimTime::from_ms(5),
        ..BreakerConfig::default()
    };
    // Tight: every deadline passes before the pool drains (the budget
    // is a quarter of the serial work and arrivals are instantaneous),
    // so the rescue pass may not resurrect anything.
    let tight = OverloadConfig {
        interarrival: SimTime::from_ns(1),
        deadline: DeadlinePolicy::Absolute(SimTime::from_ps((total.as_ps() / 4).max(1))),
        watchdog: WatchdogConfig::default(),
        breaker,
        fairness: None,
    };
    let r_tight = engine(2, tight, Some(fc)).serve(&w).unwrap();
    assert_conserved(&r_tight);
    assert_eq!(
        r_tight.faults.requeues, 0,
        "no deadline budget remains after the drain, nothing to rescue"
    );
    // Generous: the same failures are all rescued in time.
    let generous = OverloadConfig {
        interarrival: SimTime::from_us(100),
        deadline: DeadlinePolicy::Absolute(SimTime::from_secs(100)),
        watchdog: WatchdogConfig::default(),
        breaker,
        fairness: None,
    };
    let r_gen = engine(2, generous, Some(fc)).serve(&w).unwrap();
    assert_conserved(&r_gen);
    assert!(r_gen.faults.requeues > 0, "generous budget must rescue");
    assert_eq!(r_gen.overload.faulted, 0, "every failure was rescued");
    assert_eq!(r_gen.overload.completed, 200);
}

/// Percentile deadline policies resolve to a positive budget that is
/// a pure function of the workload.
#[test]
fn percentile_policy_calibrates_deterministically() {
    let w = overload_workload();
    let oc = overload_config(
        SimTime::from_us(100),
        DeadlinePolicy::Percentile {
            pct: 95.0,
            multiplier: 8.0,
        },
    );
    let a = engine(2, oc, None).serve(&w).unwrap();
    let b = engine(2, oc, None).serve(&w).unwrap();
    let budget = a.deadline_budget.expect("overload mode resolves a budget");
    assert!(budget > SimTime::ZERO);
    assert_eq!(a.deadline_budget, b.deadline_budget);
}

/// The same seed reproduces the identical overload report — outputs,
/// terminal-state maps, counters, timing and health timelines.
#[test]
fn same_seed_reproduces_identical_overload_report() {
    let w = overload_workload();
    let run = || {
        let plan = FaultPlan::new(plan_seed(), FaultRates::uniform(0.03))
            .with_latency(LatencyRates::uniform(0.04));
        let oc = overload_config(
            SimTime::from_us(50),
            DeadlinePolicy::Percentile {
                pct: 95.0,
                multiplier: 200.0,
            },
        );
        engine(3, oc, Some(FaultConfig::new(plan)))
            .serve(&w)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_conserved(&a);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.deadline_missed, b.deadline_missed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.overload, b.overload);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.deadline_budget, b.deadline_budget);
    assert_eq!(a.shard_health, b.shard_health);
    assert_eq!(a.stats, b.stats);
}

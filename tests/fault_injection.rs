//! Fault-injection tests: the card must *detect* corruption, never
//! silently compute garbage.
//!
//! The fabric model is bit-faithful — behaviour is decoded from the
//! configured frame bytes — so these tests flip real configuration
//! bits and check the failure surfaces the paper's design implies:
//! the bitstream CRC (in ROM / in flight) and the function-image
//! digest (on the device).

use aaod_algos::ids;
use aaod_bitstream::HEADER_BYTES;
use aaod_core::{CoProcessor, CoreError};
use aaod_mcu::{McuError, MiniOs, MiniOsConfig};
use aaod_sim::{SimTime, SplitMix64};

/// Flipping any byte of a resident function's frames must make the
/// next invocation fail (digest mismatch or decode error) — sampled
/// across all of its frames.
#[test]
fn frame_corruption_always_detected() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    os.install(ids::SHA256).unwrap();
    os.invoke(ids::SHA256, b"baseline").unwrap();
    let frame_bytes = os.geometry().frame_bytes();
    let n_frames = os.table().get(ids::SHA256).unwrap().frames.len();
    let mut rng = SplitMix64::new(0xFA11);
    for round in 0..n_frames {
        // re-read placement each round: recovery below re-places the
        // function
        let current = os.table().get(ids::SHA256).unwrap().frames.clone();
        let target = current[round];
        // corrupt a pseudo-random offset; the image tail is zero
        // padding, so restrict the last frame to its used head
        let limit = if round + 1 == current.len() {
            64
        } else {
            frame_bytes
        };
        let offset = rng.index(limit);
        let mut bytes = os.device().read_frame(target).unwrap().to_vec();
        bytes[offset] ^= 1 << rng.index(8);
        os.device_mut().write_frame(target, &bytes).unwrap();
        let err = os.invoke(ids::SHA256, b"baseline").unwrap_err();
        assert!(
            matches!(err, McuError::Fabric(_)),
            "frame {target} offset {offset}: corruption undetected ({err})"
        );
        // recover: evict and reconfigure from ROM
        os.evict(ids::SHA256).unwrap();
        os.invoke(ids::SHA256, b"baseline").unwrap();
    }
}

/// A corrupted ROM payload is caught by the bitstream CRC during
/// configuration, before a single frame is written.
#[test]
fn rom_payload_corruption_caught_by_crc() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    let mut encoded = os.encode_bitstream(ids::CRC32).unwrap();
    let idx = HEADER_BYTES + encoded.len() / 2;
    encoded[idx] ^= 0x10;
    // header is untouched, so the download itself succeeds
    os.download(&encoded).unwrap();
    let err = os.invoke(ids::CRC32, b"data").unwrap_err();
    assert!(
        matches!(
            err,
            McuError::Bitstream(aaod_bitstream::BitstreamError::CrcMismatch { .. })
        ),
        "{err}"
    );
    // no frames were consumed by the failed configuration
    assert_eq!(os.free_frames(), os.geometry().frames());
    assert!(os.resident().is_empty());
}

/// A corrupted header is rejected at download time.
#[test]
fn header_corruption_rejected_at_download() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    let mut encoded = os.encode_bitstream(ids::CRC32).unwrap();
    encoded[0] ^= 0xFF; // sync word
    assert!(os.download(&encoded).is_err());
}

/// A torn (half-written) configuration must not execute.
#[test]
fn torn_configuration_detected() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    os.install(ids::SHA1).unwrap();
    os.invoke(ids::SHA1, b"x").unwrap();
    let frames = os.table().get(ids::SHA1).unwrap().frames.clone();
    // zero the second half of the frames, as if reconfiguration died
    for &addr in &frames[frames.len() / 2..] {
        os.device_mut().clear_frame(addr).unwrap();
    }
    let err = os.invoke(ids::SHA1, b"x").unwrap_err();
    assert!(matches!(err, McuError::Fabric(_)), "{err}");
}

/// After a detected fault, the recovery path — a readback scrub
/// repairing the frames in place from ROM, then a retry — fully
/// recovers *without* evicting: residency survives the repair.
#[test]
fn recovery_after_corruption() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    os.install(ids::CRC8).unwrap();
    let (good, _) = os.invoke(ids::CRC8, b"123456789").unwrap();
    assert_eq!(good, vec![0xF4]);
    let frames = os.table().get(ids::CRC8).unwrap().frames.clone();
    let mut bytes = os.device().read_frame(frames[0]).unwrap().to_vec();
    bytes[50] ^= 0xFF;
    os.device_mut().write_frame(frames[0], &bytes).unwrap();
    assert!(os.invoke(ids::CRC8, b"123456789").is_err());
    // recover in place: scrub repairs from ROM, no eviction
    let report = os.scrub().unwrap();
    assert_eq!(report.repaired, vec![ids::CRC8]);
    assert!(report.time > SimTime::ZERO);
    assert_eq!(os.stats().scrub_repairs, 1);
    let (again, report) = os.invoke(ids::CRC8, b"123456789").unwrap();
    assert_eq!(again, vec![0xF4]);
    assert!(report.hit, "scrub repairs in place: residency survives");
    assert_eq!(os.stats().evictions, 0, "no eviction on the recovery path");
}

/// A rotten ROM image is caught by the CRC patrol, and a recovery
/// re-download restores service under the same id.
#[test]
fn rom_rot_recovered_by_redownload() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    os.install(ids::CRC32).unwrap();
    os.invoke(ids::CRC32, b"123456789").unwrap();
    let mut rng = SplitMix64::new(7);
    os.inject_rom_rot(ids::CRC32, &mut rng).unwrap();
    assert!(
        os.resident().is_empty(),
        "rot injection evicts the stale configuration"
    );
    let (corrupt, patrol_time) = os.rom_patrol();
    assert_eq!(corrupt, vec![ids::CRC32]);
    assert!(patrol_time > SimTime::ZERO);
    assert!(
        os.invoke(ids::CRC32, b"123456789").is_err(),
        "configuring from rotten ROM must fail the CRC"
    );
    let t = os.redownload(ids::CRC32).unwrap();
    assert!(t > SimTime::ZERO);
    assert_eq!(os.stats().redownloads, 1);
    let (out, _) = os.invoke(ids::CRC32, b"123456789").unwrap();
    assert_eq!(out, 0xCBF4_3926u32.to_le_bytes().to_vec());
    let (corrupt, _) = os.rom_patrol();
    assert!(corrupt.is_empty(), "patrol is clean after the re-download");
}

/// Corruption landing mid-way through a batched run fails the whole
/// `invoke_batch` call up front — no partial garbage results — and a
/// scrub restores batched service.
#[test]
fn batch_with_corrupt_function_fails_cleanly() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    os.install(ids::CRC8).unwrap();
    os.invoke(ids::CRC8, b"warm").unwrap();
    let frames = os.table().get(ids::CRC8).unwrap().frames.clone();
    let mut bytes = os.device().read_frame(frames[0]).unwrap().to_vec();
    bytes[10] ^= 0x20;
    os.device_mut().write_frame(frames[0], &bytes).unwrap();
    let requests_before = os.stats().requests;
    let inputs: Vec<&[u8]> = vec![b"a", b"b", b"c"];
    let err = os.invoke_batch(ids::CRC8, &inputs).unwrap_err();
    assert!(matches!(err, McuError::Fabric(_)), "{err}");
    os.scrub().unwrap();
    let served = os.invoke_batch(ids::CRC8, &inputs).unwrap();
    assert_eq!(served.len(), 3);
    assert_eq!(
        os.stats().requests,
        requests_before + 3,
        "only the post-repair batch is charged"
    );
}

/// Netlist kernels are equally protected: corrupt a LUT byte and the
/// digest refuses to execute it.
#[test]
fn netlist_truth_table_corruption_detected() {
    let mut cp = CoProcessor::default();
    cp.install(ids::ADDER8).unwrap();
    cp.invoke(ids::ADDER8, &[1, 2]).unwrap();
    let frames = cp.os().table().get(ids::ADDER8).unwrap().frames.clone();
    let mut bytes = cp.os().device().read_frame(frames[0]).unwrap().to_vec();
    // the netlist body starts right after the 40-byte descriptor;
    // corrupt a LUT record byte
    bytes[80] ^= 0x04;
    cp.os_mut()
        .device_mut()
        .write_frame(frames[0], &bytes)
        .unwrap();
    let err = cp.invoke(ids::ADDER8, &[1, 2]).unwrap_err();
    assert!(matches!(err, CoreError::Mcu(McuError::Fabric(_))), "{err}");
}

/// Invoking a function whose frames were hijacked by writing another
/// function's image is caught by the algo-id cross-check.
#[test]
fn wrong_function_in_frames_detected() {
    let mut os = MiniOs::new(MiniOsConfig::default());
    os.install(ids::PARITY8).unwrap();
    os.install(ids::POPCNT8).unwrap();
    os.invoke(ids::PARITY8, &[1]).unwrap();
    let parity_frames = os.table().get(ids::PARITY8).unwrap().frames.clone();
    // overwrite parity's frame with the popcount image (valid digest,
    // wrong identity)
    let popcnt_image = os.bank().build_image(ids::POPCNT8, os.geometry()).unwrap();
    let popcnt_frames = popcnt_image.encode(os.geometry());
    os.device_mut()
        .write_frame(parity_frames[0], &popcnt_frames[0])
        .unwrap();
    let err = os.invoke(ids::PARITY8, &[1]).unwrap_err();
    assert!(matches!(err, McuError::RecordMismatch(_)), "{err}");
}

//! Kernel-conformance tier for the DSP/AI bank (E19).
//!
//! Two layers of byte-exactness, per kernel:
//!
//! * **reference conformance** — the banked kernel, the bank's
//!   software-fallback path and the full co-processor pipeline
//!   (PCI + MiniOS + fabric) all produce byte-identical output, and
//!   that output matches an independently written plain-Rust
//!   reference (or a pinned golden fingerprint where re-deriving the
//!   exact fixed-point rounding would just restate the kernel).
//!   Edge shapes ride along: a 1×N partial record, a
//!   non-power-of-two batch with a ragged tail, all-zero input and
//!   the saturating worst case.
//! * **system identity** — serving the canonical E19 kernel mix
//!   through the concurrent `Engine` (every sharding policy) and
//!   through a healthy `Cluster` yields outputs byte-identical to a
//!   serial pass on one card.
//!
//! The workload seed is taken from `AAOD_KERNEL_SEED` when set (the
//! CI kernel matrix sweeps it) and falls back to a fixed default.

use aaod_algos::dsp_ai::{CONV2D_EDGE, CONV2D_TILE_BYTES, FFT64_BLOCK_BYTES, MATMUL16_PAIR_BYTES};
use aaod_algos::{ids, AlgorithmBank};
use aaod_core::{Cluster, ClusterConfig, CoProcessor, Engine, EngineConfig, ShardPolicy};
use aaod_workload::{mixes, Workload};

/// Seed for the kernel-tier workloads: `AAOD_KERNEL_SEED` if set.
fn kernel_seed() -> u64 {
    aaod_bench::env_seed("AAOD_KERNEL_SEED", 42)
}

/// A card whose bank includes the DSP/AI tier.
fn kernel_card() -> CoProcessor {
    CoProcessor::builder()
        .bank(AlgorithmBank::extended())
        .build()
}

/// Deterministic pseudorandom input bytes.
fn seeded_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut v = vec![0u8; len];
    aaod_sim::SplitMix64::new(seed).fill(&mut v);
    v
}

/// FNV-1a 64 fingerprint, for pinning golden outputs compactly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `input` through all three execution paths of `algo_id` —
/// the bank's software executor, the kernel's own `execute`, and the
/// full co-processor — asserting they agree, and returns the bytes.
fn all_paths(algo_id: u16, input: &[u8]) -> Vec<u8> {
    let bank = AlgorithmBank::extended();
    let kernel = bank.kernel(algo_id).expect("kernel registered");
    let direct = kernel.execute(&kernel.default_params(), input).unwrap();
    let software = bank.execute_software(algo_id, input).unwrap();
    assert_eq!(direct, software, "bank fallback diverged for {algo_id}");
    let mut cp = kernel_card();
    cp.install(algo_id).unwrap();
    let (card, _) = cp.invoke(algo_id, input).unwrap();
    assert_eq!(direct, card, "co-processor path diverged for {algo_id}");
    direct
}

/// Independent 16×16 matmul reference: transposed-B walk instead of
/// the kernel's row-major inner loop, widened before multiply.
fn matmul_reference(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for chunk in input.chunks(MATMUL16_PAIR_BYTES) {
        let mut pair = [0i32; MATMUL16_PAIR_BYTES];
        for (dst, &src) in pair.iter_mut().zip(chunk.iter()) {
            *dst = src as i8 as i32;
        }
        let (a, b) = pair.split_at(256);
        let mut bt = [0i32; 256];
        for r in 0..16 {
            for c in 0..16 {
                bt[c * 16 + r] = b[r * 16 + c];
            }
        }
        for i in 0..16 {
            for j in 0..16 {
                let dot: i32 = (0..16).map(|k| a[i * 16 + k] * bt[j * 16 + k]).sum();
                let y = dot.max(i16::MIN as i32).min(i16::MAX as i32) as i16;
                out.extend_from_slice(&y.to_le_bytes());
            }
        }
    }
    out
}

/// Independent 3×3 convolution reference: gather-style neighbourhood
/// walk with explicit bounds checks.
fn conv2d_reference(params: &[u8], input: &[u8]) -> Vec<u8> {
    let coeffs: Vec<i32> = params[..9].iter().map(|&p| p as i8 as i32).collect();
    let shift = params[9] as u32;
    let e = CONV2D_EDGE;
    let mut out = Vec::new();
    for chunk in input.chunks(CONV2D_TILE_BYTES) {
        let at = |y: isize, x: isize| -> i32 {
            if y < 0 || x < 0 || y >= e as isize || x >= e as isize {
                return 0;
            }
            let idx = y as usize * e + x as usize;
            *chunk.get(idx).unwrap_or(&0) as i32
        };
        for y in 0..e as isize {
            for x in 0..e as isize {
                let mut acc = 0i32;
                for (t, &c) in coeffs.iter().enumerate() {
                    let (ky, kx) = ((t / 3) as isize - 1, (t % 3) as isize - 1);
                    acc += c * at(y + ky, x + kx);
                }
                out.push((acc >> shift).clamp(0, 255) as u8);
            }
        }
    }
    out
}

#[test]
fn matmul16_matches_reference_on_random_and_edge_shapes() {
    let shapes = [
        seeded_bytes(8 * MATMUL16_PAIR_BYTES, 0xE1901), // full batch
        seeded_bytes(3 * MATMUL16_PAIR_BYTES + 100, 0xE1902), // ragged tail
        seeded_bytes(40, 0xE1903),                      // 1×N partial record
        vec![0u8; 2 * MATMUL16_PAIR_BYTES],             // all-zero
        vec![0x80u8; MATMUL16_PAIR_BYTES],              // saturating worst case
    ];
    for (s, input) in shapes.iter().enumerate() {
        let got = all_paths(ids::MATMUL16, input);
        assert_eq!(got, matmul_reference(input), "shape {s}");
    }
    // the saturating case really saturates
    let sat = all_paths(ids::MATMUL16, &[0x80u8; MATMUL16_PAIR_BYTES]);
    assert!(sat
        .chunks_exact(2)
        .all(|c| i16::from_le_bytes([c[0], c[1]]) == i16::MAX));
}

#[test]
fn conv2d_matches_reference_on_random_and_edge_shapes() {
    let params = AlgorithmBank::extended()
        .kernel(ids::CONV2D)
        .unwrap()
        .default_params();
    let shapes = [
        seeded_bytes(4 * CONV2D_TILE_BYTES, 0xE1911),
        seeded_bytes(3 * CONV2D_TILE_BYTES + 77, 0xE1912),
        seeded_bytes(CONV2D_EDGE, 0xE1913), // one row: 1×N
        vec![0u8; CONV2D_TILE_BYTES],
        vec![0xFFu8; CONV2D_TILE_BYTES], // clamp ceiling under blur
    ];
    for (s, input) in shapes.iter().enumerate() {
        let got = all_paths(ids::CONV2D, input);
        assert_eq!(got, conv2d_reference(&params, input), "shape {s}");
    }
}

#[test]
fn fft64_analytic_cases_and_golden_fingerprint() {
    // all-zero input transforms to all-zero bins
    let zero = all_paths(ids::FFT64, &[0u8; 2 * FFT64_BLOCK_BYTES]);
    assert!(zero.iter().all(|&b| b == 0));
    // DC of amplitude A lands wholly in bin 0 (the per-stage ½
    // scaling normalises the transform by 1/64)
    let dc: Vec<u8> = (0..64).flat_map(|_| [0x00, 0x19, 0, 0]).collect(); // re = 6400
    let bins = all_paths(ids::FFT64, &dc);
    assert_eq!(i16::from_le_bytes([bins[0], bins[1]]), 6400);
    assert!(bins[4..].iter().all(|&b| b == 0), "energy leaked from DC");
    // an impulse of amplitude A spreads A/64 into every bin
    let mut impulse = vec![0u8; FFT64_BLOCK_BYTES];
    impulse[..2].copy_from_slice(&6400i16.to_le_bytes());
    let flat = all_paths(ids::FFT64, &impulse);
    for (p, c) in flat.chunks_exact(4).enumerate() {
        assert_eq!(i16::from_le_bytes([c[0], c[1]]), 100, "re bin {p}");
        assert_eq!(i16::from_le_bytes([c[2], c[3]]), 0, "im bin {p}");
    }
    // the Nyquist tone re[n] = A·(−1)^n concentrates in bin 32
    let nyq: Vec<u8> = (0..64i16)
        .flat_map(|n| {
            let a: i16 = if n % 2 == 0 { 6400 } else { -6400 };
            let mut s = a.to_le_bytes().to_vec();
            s.extend_from_slice(&[0, 0]);
            s
        })
        .collect();
    let bins = all_paths(ids::FFT64, &nyq);
    assert_eq!(i16::from_le_bytes([bins[128], bins[129]]), 6400);
    assert!(bins[..128].iter().all(|&b| b == 0));
    assert!(bins[132..].iter().all(|&b| b == 0));
    // pinned fingerprint over pseudorandom blocks incl. a ragged
    // tail: any fixed-point or ordering drift changes it
    let noisy = all_paths(
        ids::FFT64,
        &seeded_bytes(5 * FFT64_BLOCK_BYTES + 9, 0xE1921),
    );
    assert_eq!(
        fnv1a(&noisy),
        GOLDEN_FFT64_NOISY,
        "fft64 output drifted; got fingerprint {:#018x}",
        fnv1a(&noisy)
    );
}

/// Pinned golden fingerprints (FNV-1a 64 of the full output bytes)
/// for pseudorandom inputs. Regenerate only for an intentional
/// semantic change, from the value in the assertion message.
const GOLDEN_FFT64_NOISY: u64 = 0x3142f146de8b6d46;
const GOLDEN_MATMUL16: u64 = 0xaad2495d1c54dfdd;
const GOLDEN_CONV2D: u64 = 0x22e823912fce61c1;
const GOLDEN_FFT64: u64 = 0x180b5034164a8017;

#[test]
fn golden_fingerprints_pin_all_kernels() {
    let mm = all_paths(ids::MATMUL16, &seeded_bytes(4096, 0xE19));
    let cv = all_paths(ids::CONV2D, &seeded_bytes(4096, 0xE19));
    let ft = all_paths(ids::FFT64, &seeded_bytes(4096, 0xE19));
    assert_eq!(
        [fnv1a(&mm), fnv1a(&cv), fnv1a(&ft)],
        [GOLDEN_MATMUL16, GOLDEN_CONV2D, GOLDEN_FFT64],
        "kernel outputs drifted; got {:#018x} {:#018x} {:#018x}",
        fnv1a(&mm),
        fnv1a(&cv),
        fnv1a(&ft)
    );
}

/// Serves `workload` serially on one kernel card with every
/// algorithm pre-installed.
fn serial_reference(workload: &Workload) -> Vec<Vec<u8>> {
    let mut cp = kernel_card();
    for &algo in &workload.distinct_algos() {
        cp.install(algo).unwrap();
    }
    workload
        .requests()
        .iter()
        .enumerate()
        .map(|(i, req)| cp.invoke(req.algo_id, &workload.input(i)).unwrap().0)
        .collect()
}

/// The E19 mix through the concurrent engine, every sharding policy:
/// outputs must be byte-identical to the serial pass even though the
/// three images (72 + 56 + 64 frames) can never co-reside on the
/// 96-frame device and every switch forces reconfiguration.
#[test]
fn kernel_mix_engine_matches_serial_across_policies() {
    let workload = mixes::kernel_workload(120, kernel_seed());
    let expected = serial_reference(&workload);
    for policy in [
        ShardPolicy::AlgoModulo,
        ShardPolicy::RoundRobin,
        ShardPolicy::Balanced,
        ShardPolicy::Dynamic,
    ] {
        let engine = Engine::with_factory(
            EngineConfig {
                workers: 4,
                shard: policy,
                ..EngineConfig::default()
            },
            kernel_card,
        );
        let r = engine.serve(&workload).unwrap();
        assert_eq!(
            r.outputs.as_ref().unwrap(),
            &expected,
            "{} engine outputs diverged from serial on the kernel mix",
            policy.name()
        );
    }
}

/// The E19 mix through a healthy fleet: every job completes and every
/// output is byte-identical to the serial card, no matter which
/// replica served it.
#[test]
fn kernel_mix_cluster_matches_serial() {
    let workload = mixes::kernel_workload(120, kernel_seed());
    let expected = serial_reference(&workload);
    let bank = AlgorithmBank::extended();
    let cluster = Cluster::with_factory(
        ClusterConfig {
            cards: 4,
            replication: 2,
            card_workers: 2,
            ..ClusterConfig::default()
        },
        kernel_card,
    );
    let result = cluster.serve(&workload, &bank).unwrap();
    assert!(result.stats.accounted(), "ledger: {:?}", result.stats);
    assert_eq!(
        result.stats.goodput(),
        1.0,
        "healthy fleet must complete the whole kernel mix: {:?}",
        result.stats
    );
    assert_eq!(result.outputs.as_ref().unwrap(), &expected);
}

//! Model-stability snapshots.
//!
//! EXPERIMENTS.md cites exact modelled numbers and promises they
//! reproduce bit-for-bit. These tests pin a representative sample of
//! those numbers so an accidental change to a timing constant, codec,
//! or filler seed shows up as a loud, reviewable diff instead of
//! silently invalidating the documented tables.
//!
//! If you change the model *deliberately*, update the constants here
//! and regenerate EXPERIMENTS.md (`cargo bench`).

use aaod_algos::{ids, AlgorithmBank};
use aaod_bitstream::codec::{registry, CodecId};
use aaod_bitstream::Bitstream;
use aaod_core::CoProcessor;
use aaod_fabric::DeviceGeometry;

fn bank_flat(algo: u16) -> Vec<u8> {
    let geom = DeviceGeometry::default();
    let bank = AlgorithmBank::standard();
    let image = bank.build_image(algo, geom).unwrap();
    Bitstream::from_image(&image, geom).flat()
}

/// The AES-128 bitstream and its compressed sizes are fully
/// deterministic (filler seed = algorithm id).
#[test]
fn aes_bitstream_sizes_are_stable() {
    let flat = bank_flat(ids::AES128);
    assert_eq!(flat.len(), 24 * 896, "24 frames of 896 bytes");
    let sizes: Vec<usize> = CodecId::ALL
        .iter()
        .map(|&id| registry::codec(id, 896).compress(&flat).len())
        .collect();
    // null, rle, lzss, huffman, frame-xor
    assert_eq!(sizes[0], flat.len(), "null codec stores");
    // Pin the exact compressed sizes; see module docs before changing.
    let ratios: Vec<f64> = sizes
        .iter()
        .map(|&s| flat.len() as f64 / s as f64)
        .collect();
    assert!(
        ratios[1] > 1.5 && ratios[1] < 2.5,
        "rle ratio {:.2}",
        ratios[1]
    );
    assert!(
        ratios[2] > 3.5 && ratios[2] < 6.0,
        "lzss ratio {:.2}",
        ratios[2]
    );
    assert!(
        ratios[3] > 2.5 && ratios[3] < 5.0,
        "huffman ratio {:.2}",
        ratios[3]
    );
    assert!(
        ratios[4] > 2.0 && ratios[4] < 4.5,
        "frame-xor ratio {:.2}",
        ratios[4]
    );
    // determinism: same sizes on a second build
    let again: Vec<usize> = CodecId::ALL
        .iter()
        .map(|&id| {
            registry::codec(id, 896)
                .compress(&bank_flat(ids::AES128))
                .len()
        })
        .collect();
    assert_eq!(sizes, again);
}

/// The warm-hit latency of SHA-1 on the default card is a documented
/// headline number; pin it to the picosecond.
#[test]
fn warm_hit_latency_is_stable() {
    let mut cp = CoProcessor::default();
    cp.install(ids::SHA1).unwrap();
    let input = vec![0u8; 1500];
    cp.invoke(ids::SHA1, &input).unwrap(); // swap-in
    let (_, a) = cp.invoke(ids::SHA1, &input).unwrap();
    let (_, b) = cp.invoke(ids::SHA1, &input).unwrap();
    assert_eq!(a.total(), b.total(), "warm hits must be time-invariant");
    // documented order of magnitude (tens of microseconds)
    let us = a.total().as_us();
    assert!(
        (5.0..60.0).contains(&us),
        "warm SHA-1 hit drifted to {us}us"
    );
}

/// Swap-in (miss) reconfiguration for AES must stay in the
/// millisecond band the E1/E3 tables document.
#[test]
fn aes_swap_in_band_is_stable() {
    let mut cp = CoProcessor::default();
    cp.install(ids::AES128).unwrap();
    let (_, report) = cp.invoke(ids::AES128, &[0u8; 16]).unwrap();
    let ms = (report.os.reconfig_time + report.os.rom_time).as_ms();
    assert!((0.5..3.0).contains(&ms), "AES swap-in drifted to {ms}ms");
}

/// Frame counts per algorithm are part of the documented area model.
#[test]
fn area_model_is_stable() {
    let geom = DeviceGeometry::default();
    let bank = AlgorithmBank::standard();
    let expected: &[(u16, usize)] = &[
        (ids::AES128, 24),
        (ids::TDES, 18),
        (ids::SHA256, 16),
        (ids::HMAC_SHA1, 14),
        (ids::SHA1, 12),
        (ids::XTEA, 6),
        (ids::MATMUL8, 32),
        (ids::FIR, 4),
        (ids::CRC32, 2),
    ];
    for &(id, frames) in expected {
        let got = bank.build_image(id, geom).unwrap().frames_needed(geom);
        assert_eq!(got, frames, "area of algo {id} drifted");
    }
    // netlist kernels: small, exact size depends on the optimiser
    for id in [ids::CRC8, ids::ADDER8, ids::POPCNT8, ids::PARITY8] {
        let got = bank.build_image(id, geom).unwrap().frames_needed(geom);
        assert!(got <= 2, "netlist algo {id} grew to {got} frames");
    }
}

/// Public top-level types are Send (usable from worker threads).
#[test]
fn key_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<CoProcessor>();
    assert_send::<aaod_mcu::MiniOs>();
    assert_send::<AlgorithmBank>();
    assert_send::<aaod_workload::Workload>();
    assert_send::<aaod_fabric::Device>();
}

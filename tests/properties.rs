//! Property-based tests over the core data structures and invariants.

use aaod_bitstream::codec::{decompress_all, registry, CodecId};
use aaod_bitstream::Bitstream;
use aaod_fabric::{DeviceGeometry, FunctionImage, NetlistMode};
use aaod_mcu::{DecodedCache, FreeFrameList, MiniOs, MiniOsConfig};
use aaod_mem::{RecordFields, Rom};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every codec round-trips arbitrary data.
    #[test]
    fn codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096),
                       codec_idx in 0usize..CodecId::ALL.len(),
                       frame_bytes in 1usize..512) {
        let codec = registry::codec(CodecId::ALL[codec_idx], frame_bytes);
        let compressed = codec.compress(&data);
        let back = decompress_all(codec.as_ref(), &compressed).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Windowed decompression equals bulk decompression for any
    /// window size.
    #[test]
    fn windowed_equals_bulk(data in proptest::collection::vec(any::<u8>(), 0..2048),
                            codec_idx in 0usize..CodecId::ALL.len(),
                            window in 1usize..777) {
        let codec = registry::codec(CodecId::ALL[codec_idx], 64);
        let compressed = codec.compress(&data);
        let mut decoder = codec.decompressor(&compressed);
        let mut out = Vec::new();
        let mut buf = vec![0u8; window];
        loop {
            let n = decoder.read(&mut buf).unwrap();
            if n == 0 { break; }
            out.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(out, data);
    }

    /// Bitstream encode/decode is the identity for any frames.
    #[test]
    fn bitstream_roundtrip(frame_bytes in 1usize..256,
                           n_frames in 1usize..12,
                           codec_idx in 0usize..CodecId::ALL.len(),
                           seed in any::<u64>()) {
        let mut rng = aaod_sim::SplitMix64::new(seed);
        let frames: Vec<Vec<u8>> = (0..n_frames).map(|_| {
            let mut f = vec![0u8; frame_bytes];
            rng.fill(&mut f);
            f
        }).collect();
        let bs = Bitstream::new(9, 4, 4, frame_bytes, frames).unwrap();
        let codec = registry::codec(CodecId::ALL[codec_idx], frame_bytes);
        let encoded = bs.encode(codec.as_ref());
        prop_assert_eq!(Bitstream::decode(&encoded).unwrap(), bs);
    }

    /// Flipping any single bit of an image's used bytes is detected
    /// at decode time (digest or structural failure) — the image never
    /// silently decodes to a *different valid* identity.
    #[test]
    fn image_single_bit_corruption_detected(
        params in proptest::collection::vec(any::<u8>(), 0..32),
        filler in proptest::collection::vec(any::<u8>(), 0..256),
        byte_idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let img = FunctionImage::from_behavioral(5, &params, &filler, 4, 4);
        let mut bytes = img.to_bytes();
        let idx = byte_idx % bytes.len();
        bytes[idx] ^= 1 << bit;
        match FunctionImage::from_bytes(&bytes) {
            Err(_) => {} // detected
            Ok(other) => {
                // accepting corrupt bytes is only allowed if they
                // decode to the identical image (cannot happen for a
                // real flip, so fail loudly)
                prop_assert_eq!(other, img, "corruption silently accepted");
                prop_assert!(false, "flip at {} bit {} changed nothing?", idx, bit);
            }
        }
    }

    /// Netlist adder image computes u8 addition from decoded bits for
    /// arbitrary operand streams.
    #[test]
    fn adder_image_matches_arithmetic(pairs in proptest::collection::vec(any::<(u8, u8)>(), 1..64)) {
        let img = FunctionImage::from_netlist(
            1,
            aaod_algos::netlists::adder8_netlist(),
            NetlistMode::Combinational,
            1,
            1,
        );
        let geom = DeviceGeometry::new(8, 16);
        let decoded = FunctionImage::decode_frames(&img.encode(geom), geom).unwrap();
        let input: Vec<u8> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        let out = decoded.run_netlist(&input).unwrap();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let got = u16::from_le_bytes([out[i * 2], out[i * 2 + 1]]);
            prop_assert_eq!(got, a as u16 + b as u16);
        }
    }

    /// CRC-8 netlist equals the reference implementation on arbitrary
    /// inputs.
    #[test]
    fn crc8_image_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let img = FunctionImage::from_netlist(
            2,
            aaod_algos::netlists::crc8_netlist(),
            NetlistMode::Streaming,
            1,
            1,
        );
        let out = img.run_netlist(&data).unwrap();
        prop_assert_eq!(out, vec![aaod_algos::netlists::crc8_reference(&data)]);
    }

    /// FreeFrameList: any interleaving of allocations and releases
    /// conserves frames and never double-allocates.
    #[test]
    fn free_frame_list_conserves_frames(ops in proptest::collection::vec(any::<(bool, u8)>(), 1..64)) {
        let total = 32usize;
        let mut list = FreeFrameList::new(total);
        let mut held: Vec<Vec<aaod_fabric::FrameAddress>> = Vec::new();
        for (alloc, amount) in ops {
            if alloc {
                let n = (amount as usize) % 8;
                if let Some(frames) = list.allocate(n) {
                    prop_assert_eq!(frames.len(), n);
                    // no frame may be handed out twice
                    for f in &frames {
                        for h in &held {
                            prop_assert!(!h.contains(f), "frame {} double-allocated", f);
                        }
                    }
                    if !frames.is_empty() {
                        held.push(frames);
                    }
                }
            } else if !held.is_empty() {
                let frames = held.remove((amount as usize) % held.len());
                list.release(&frames);
            }
            let held_count: usize = held.iter().map(Vec::len).sum();
            prop_assert_eq!(list.free_count() + held_count, total);
        }
    }

    /// ROM: any download sequence preserves the dual-ended layout
    /// invariant and lookups return exactly what was stored.
    #[test]
    fn rom_layout_invariant(sizes in proptest::collection::vec(1usize..500, 1..20)) {
        let mut rom = Rom::new(4096);
        let mut stored: Vec<(u16, Vec<u8>)> = Vec::new();
        for (i, size) in sizes.into_iter().enumerate() {
            let payload = vec![(i % 251) as u8; size];
            let fields = RecordFields {
                algo_id: i as u16,
                uncompressed_len: size as u32 * 2,
                codec: 1,
                input_width: 4,
                output_width: 4,
                n_frames: 1,
            };
            match rom.download(fields, &payload) {
                Ok(()) => stored.push((i as u16, payload)),
                Err(_) => break, // full: acceptable, layout must survive
            }
            prop_assert_eq!(
                rom.bitstream_bytes_used() + rom.table_bytes_used() + rom.free_bytes(),
                rom.capacity()
            );
        }
        for (id, payload) in &stored {
            let rec = rom.lookup(*id).expect("stored function must be found");
            prop_assert_eq!(rom.bitstream_bytes(&rec), &payload[..]);
        }
    }

    /// The netlist optimiser preserves semantics on randomly built
    /// netlists.
    #[test]
    fn optimizer_preserves_semantics(seed in any::<u64>(), n_inputs in 1usize..10, n_gates in 1usize..60) {
        use aaod_fabric::{NetId, NetlistBuilder};
        let mut rng = aaod_sim::SplitMix64::new(seed);
        let mut b = NetlistBuilder::new();
        let inputs = b.inputs(n_inputs);
        let mut nets: Vec<NetId> = vec![b.zero(), b.one()];
        nets.extend(&inputs);
        for _ in 0..n_gates {
            let pick = |rng: &mut aaod_sim::SplitMix64, nets: &[NetId]| nets[rng.index(nets.len())];
            let truth = rng.next_u64() as u16;
            let ins = [
                pick(&mut rng, &nets),
                pick(&mut rng, &nets),
                pick(&mut rng, &nets),
                pick(&mut rng, &nets),
            ];
            let out = b.lut4(truth, ins);
            nets.push(out);
        }
        // choose a few outputs from anywhere in the design
        let n_outputs = 1 + rng.index(4);
        for _ in 0..n_outputs {
            let net = nets[rng.index(nets.len())];
            b.output(net);
        }
        let original = b.finish().unwrap();
        let (optimized, stats) = aaod_fabric::opt::optimize(&original).unwrap();
        prop_assert!(optimized.n_luts() <= original.n_luts());
        prop_assert_eq!(stats.luts_after, optimized.n_luts());
        for _ in 0..16 {
            let ins: Vec<bool> = (0..n_inputs).map(|_| rng.chance(0.5)).collect();
            prop_assert_eq!(original.eval(&ins), optimized.eval(&ins));
        }
    }

    /// Bit-sliced batch evaluation is byte-identical to the scalar
    /// walk on randomly built netlists, for any lane count — including
    /// counts that do not divide 64 and spill across lane groups.
    #[test]
    fn eval_batch_matches_scalar_eval(
        seed in any::<u64>(),
        n_inputs in 1usize..12,
        n_gates in 1usize..60,
        n_lanes in 0usize..150,
    ) {
        use aaod_fabric::{NetId, NetlistBuilder};
        let mut rng = aaod_sim::SplitMix64::new(seed);
        let mut b = NetlistBuilder::new();
        let inputs = b.inputs(n_inputs);
        let mut nets: Vec<NetId> = vec![b.zero(), b.one()];
        nets.extend(&inputs);
        for _ in 0..n_gates {
            let pick = |rng: &mut aaod_sim::SplitMix64, nets: &[NetId]| nets[rng.index(nets.len())];
            let truth = rng.next_u64() as u16;
            let ins = [
                pick(&mut rng, &nets),
                pick(&mut rng, &nets),
                pick(&mut rng, &nets),
                pick(&mut rng, &nets),
            ];
            let out = b.lut4(truth, ins);
            nets.push(out);
        }
        let n_outputs = 1 + rng.index(4);
        for _ in 0..n_outputs {
            let net = nets[rng.index(nets.len())];
            b.output(net);
        }
        let netlist = b.finish().unwrap();
        let lanes: Vec<Vec<bool>> = (0..n_lanes)
            .map(|_| (0..n_inputs).map(|_| rng.chance(0.5)).collect())
            .collect();
        let refs: Vec<&[bool]> = lanes.iter().map(Vec::as_slice).collect();
        let batched = netlist.eval_batch(&refs);
        prop_assert_eq!(batched.len(), n_lanes);
        for (lane, got) in lanes.iter().zip(&batched) {
            prop_assert_eq!(got, &netlist.eval(lane));
        }
    }

    /// The byte-level batch runner matches the scalar runner on the
    /// real bank netlists for arbitrary mixed-length inputs, in both
    /// combinational and streaming modes.
    #[test]
    fn run_netlist_batch_matches_scalar(
        inputs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..80), 0..90),
    ) {
        use aaod_fabric::{run_decoded_netlist, run_decoded_netlist_batch, BatchScratch};
        let cases = [
            (aaod_algos::netlists::adder8_netlist(), NetlistMode::Combinational),
            (aaod_algos::netlists::crc8_netlist(), NetlistMode::Streaming),
        ];
        let mut scratch = BatchScratch::default();
        for (netlist, mode) in cases {
            let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
            let batched = run_decoded_netlist_batch(&netlist, mode, &refs, &mut scratch).unwrap();
            for (input, got) in inputs.iter().zip(&batched) {
                prop_assert_eq!(got, &run_decoded_netlist(&netlist, mode, input).unwrap());
            }
        }
    }

    /// Streaming decompressors never panic on arbitrary (garbage)
    /// compressed input — they either produce bytes or fail cleanly.
    #[test]
    fn decompressors_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                            codec_idx in 0usize..CodecId::ALL.len()) {
        let codec = registry::codec(CodecId::ALL[codec_idx], 64);
        let mut decoder = codec.decompressor(&data);
        let mut buf = [0u8; 257];
        // bound the pull: garbage RLE can legitimately expand a lot
        for _ in 0..64 {
            match decoder.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// Zipf workloads honour the algorithm universe and length.
    #[test]
    fn workload_well_formed(n in 1usize..300, s in 0.2f64..2.5, seed in any::<u64>()) {
        let algos = [3u16, 7, 11, 13];
        let w = aaod_workload::Workload::zipf(&algos, n, s, 16, seed);
        prop_assert_eq!(w.len(), n);
        for r in w.requests() {
            prop_assert!(algos.contains(&r.algo_id));
            prop_assert_eq!(r.input_len, 16);
        }
    }

    /// DecodedCache: any interleaving of inserts, lookups, removals
    /// and resets stays inside the byte budget and keeps the counter
    /// identity `hits + misses == lookups` — including across a
    /// `clear()` (population dropped, ledger kept) and a full
    /// `clear() + reset_stats()` watchdog-style reset.
    #[test]
    fn decoded_cache_budget_and_counter_invariants(
        ops in proptest::collection::vec((0u8..6, any::<u8>(), 1usize..64), 1..64),
    ) {
        let mut cache = DecodedCache::new(256);
        for (op, key_sel, size) in ops {
            let key = ((key_sel % 8) as u16, 0u8);
            match op {
                0 => { cache.insert(key, vec![vec![0u8; size]]); }
                1 => { let _ = cache.get(&key); }
                2 => { cache.remove(&key); }
                3 => { cache.remove_algo(key.0); }
                4 => {
                    let ledger = (cache.lookups(), cache.hits());
                    cache.clear();
                    prop_assert!(cache.is_empty());
                    prop_assert_eq!((cache.lookups(), cache.hits()), ledger);
                }
                _ => {
                    cache.clear();
                    cache.reset_stats();
                    prop_assert_eq!(cache.lookups(), 0);
                    prop_assert_eq!(cache.hits(), 0);
                }
            }
            prop_assert!(
                cache.bytes() <= cache.capacity_bytes(),
                "budget burst: {} > {}", cache.bytes(), cache.capacity_bytes()
            );
            prop_assert_eq!(cache.hits() + cache.misses(), cache.lookups());
            prop_assert_eq!(cache.is_empty(), cache.bytes() == 0);
        }
    }

    /// A MiniOs watchdog reset restarts the decoded-cache ledger from
    /// zero, so the identity holds over exactly the post-reset
    /// population — no pre-reset lookups leak into the new epoch.
    #[test]
    fn mini_os_reset_restarts_decoded_ledger(
        invokes in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        use aaod_algos::ids;
        let algos = [ids::XTEA, ids::SHA1, ids::CRC32, ids::CRC8];
        // tight fabric: constant eviction keeps the decoded cache busy
        let mut os = MiniOs::new(MiniOsConfig {
            geometry: DeviceGeometry::new(26, 16),
            ..MiniOsConfig::default()
        });
        for &id in &algos {
            os.install(id).unwrap();
        }
        for sel in &invokes {
            let _ = os.invoke(algos[(*sel as usize) % algos.len()], b"data");
        }
        os.reset();
        let cache = os.decoded_cache();
        prop_assert_eq!(cache.lookups(), 0);
        prop_assert_eq!(cache.hits(), 0);
        prop_assert_eq!(cache.misses(), 0);
        prop_assert!(cache.is_empty());
        // the new epoch's ledger is internally consistent on its own
        for sel in &invokes {
            let _ = os.invoke(algos[(*sel as usize) % algos.len()], b"data");
        }
        let cache = os.decoded_cache();
        prop_assert_eq!(cache.hits() + cache.misses(), cache.lookups());
    }

    /// MiniOs frame ledger: any interleaving of invokes, evictions,
    /// prefetch hints, scrubs and SEU injections keeps every frame
    /// either free or owned by exactly one resident function, and the
    /// trace's `DetailEvent::Eviction` stream stays in lock-step with
    /// `stats.evictions` — prefetch-driven evictions included.
    #[test]
    fn mini_os_frame_ledger_conserved_under_chaos(
        ops in proptest::collection::vec((0u8..5, any::<u8>()), 1..40),
        seed in any::<u64>(),
    ) {
        use aaod_algos::ids;
        let algos = [ids::XTEA, ids::SHA1, ids::SHA256, ids::CRC32, ids::CRC8];
        // 26 frames: constant replacement pressure
        let mut os = MiniOs::new(MiniOsConfig {
            geometry: DeviceGeometry::new(26, 16),
            ..MiniOsConfig::default()
        });
        os.set_trace(true);
        for &id in &algos {
            os.install(id).unwrap();
        }
        os.take_details(); // drop install-time noise; evictions start at a clean ledger
        let install_evictions = os.stats().evictions;
        let mut rng = aaod_sim::SplitMix64::new(seed);
        let total = os.geometry().frames();
        let mut traced_evictions = 0u64;
        for (op, detail) in ops {
            let algo = algos[(detail as usize) % algos.len()];
            match op {
                // corrupted functions legitimately fail to invoke and
                // missing residents fail to evict; the ledger must
                // survive either way
                0 => { let _ = os.invoke(algo, b"data"); }
                1 => { let _ = os.evict(algo); }
                2 => { let _ = os.scrub(); }
                3 => { let _ = os.prefetch_hint(algo); }
                _ => { os.inject_seu(algo, &mut rng); }
            }
            let mut owned = vec![false; total];
            for id in os.resident() {
                for f in &os.table().get(id).unwrap().frames {
                    prop_assert!(!owned[f.index()], "frame {} owned twice", f);
                    owned[f.index()] = true;
                }
            }
            let held = owned.iter().filter(|&&b| b).count();
            prop_assert_eq!(held + os.free_frames(), total);
            // the observability stream is a second bookkeeper: every
            // charged eviction (demand or prefetch) must appear as a
            // detail event, and nothing may appear uncharged
            traced_evictions += os
                .take_details()
                .iter()
                .filter(|e| matches!(e, aaod_sim::DetailEvent::Eviction { .. }))
                .count() as u64;
            prop_assert_eq!(
                traced_evictions + install_evictions,
                os.stats().evictions,
                "trace and ledger eviction counts diverged"
            );
        }
    }

    /// LUT canonicalisation round-trips: for any truth table,
    /// decanonicalising the canonical form with the recorded
    /// permutation restores the original word exactly, and the
    /// canonical form is permutation-invariant (every input ordering
    /// of the same LUT canonicalises to the same word).
    #[test]
    fn lut_canonicalisation_roundtrips(t in any::<u16>(), perm in 0u8..aaod_bitstream::canon::N_PERMS as u8) {
        use aaod_bitstream::canon::{apply_perm, canon_word, decanon_word};
        let (canonical, p) = canon_word(t);
        prop_assert_eq!(decanon_word(canonical, p), t);
        // canonical form never compares above any permuted variant
        prop_assert!(canonical <= apply_perm(t, perm));
        // permuting the inputs must not change the canonical class
        let (canonical2, _) = canon_word(apply_perm(t, perm));
        prop_assert_eq!(canonical, canonical2);
    }

    /// Frame-level canonicalisation round-trips byte-for-byte for any
    /// frame, including odd-length frames with a trailing
    /// non-LUT byte.
    #[test]
    fn frame_canonicalisation_roundtrips(frame in proptest::collection::vec(any::<u8>(), 0..512)) {
        use aaod_bitstream::canon::{canon_frame, decanon_frame};
        let (canonical, perm) = canon_frame(&frame);
        prop_assert_eq!(canonical.len(), frame.len());
        prop_assert_eq!(decanon_frame(&canonical, perm), frame);
    }

    /// The frame store is a pure function of frame content: lookups
    /// after any insert sequence return bytes identical to what was
    /// inserted — hash-equal keys imply byte-equal frames, never a
    /// false dedup — and the byte ledger stays within budget.
    #[test]
    fn frame_store_never_serves_wrong_bytes(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..96), 1..24),
        capacity in 64usize..4096,
    ) {
        use aaod_bitstream::{frame_key, FrameStore};
        let mut store = FrameStore::new(capacity);
        for frame in &frames {
            store.insert(frame);
            prop_assert!(store.bytes() <= store.capacity_bytes());
        }
        for frame in &frames {
            // identical content always derives the identical key
            prop_assert_eq!(frame_key(frame), frame_key(frame));
            if let Some(got) = store.get_raw(frame_key(frame)) {
                prop_assert_eq!(&*got, frame, "store served different bytes");
            }
        }
    }

    /// SimTime arithmetic is consistent with picosecond integers.
    #[test]
    fn simtime_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        use aaod_sim::SimTime;
        let ta = SimTime::from_ps(a);
        let tb = SimTime::from_ps(b);
        prop_assert_eq!((ta + tb).as_ps(), a + b);
        prop_assert_eq!(ta.saturating_sub(tb).as_ps(), a.saturating_sub(b));
        prop_assert_eq!(ta.max(tb).as_ps(), a.max(b));
    }
}

// Engine runs are costly, so the overload property gets its own small
// case budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any seeded latency-fault plan and deadline tightness, the
    /// overload layer conserves jobs — `shed + deadline_missed +
    /// completed + faulted == submitted` — and every surviving output
    /// is byte-identical to the fault-free serial run.
    #[test]
    fn overload_conserves_jobs_and_survivors_match_serial(
        seed in any::<u64>(),
        latency_rate in 0.0f64..0.15,
        interarrival_ns in 1u64..200_000,
        budget_us in 1u64..100_000,
        workers in 1usize..4,
    ) {
        use aaod_algos::ids;
        use aaod_core::{
            CoProcessor, DeadlinePolicy, Engine, EngineConfig, FaultConfig, OverloadConfig,
        };
        use aaod_sim::{FaultPlan, FaultRates, LatencyRates, SimTime};
        let algos = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];
        let w = aaod_workload::Workload::zipf(&algos, 48, 1.1, 32, seed);
        let mut serial = CoProcessor::default();
        for &algo in &w.distinct_algos() {
            serial.install(algo).unwrap();
        }
        let baseline: Vec<Vec<u8>> = w
            .requests()
            .iter()
            .enumerate()
            .map(|(i, req)| serial.invoke(req.algo_id, &w.input(i)).unwrap().0)
            .collect();
        let plan = FaultPlan::new(seed, FaultRates::ZERO)
            .with_latency(LatencyRates::uniform(latency_rate / 3.0));
        let r = Engine::new(EngineConfig {
            workers,
            verify: true,
            overload: Some(OverloadConfig {
                interarrival: SimTime::from_ns(interarrival_ns),
                deadline: DeadlinePolicy::Absolute(SimTime::from_us(budget_us)),
                ..OverloadConfig::default()
            }),
            faults: Some(FaultConfig::new(plan)),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        prop_assert!(r.overload.accounted(), "leaked jobs: {:?}", r.overload);
        prop_assert_eq!(r.overload.submitted, 48);
        prop_assert_eq!(r.overload.shed, r.shed.len() as u64);
        prop_assert_eq!(r.overload.deadline_missed, r.deadline_missed.len() as u64);
        prop_assert_eq!(r.overload.faulted, r.failed.len() as u64);
        let outputs = r.outputs.as_ref().unwrap();
        for (i, want) in baseline.iter().enumerate() {
            let dropped = r.shed.contains_key(&i)
                || r.deadline_missed.contains_key(&i)
                || r.failed.contains_key(&i);
            if dropped {
                prop_assert!(outputs[i].is_empty(), "dropped job {} left bytes", i);
            } else {
                prop_assert_eq!(&outputs[i], want, "survivor {} corrupted", i);
            }
        }
    }

    /// For any seeded workload and fault mix, the engine's trace is
    /// well-formed: per-shard timestamps are monotone non-decreasing,
    /// every opened job closes exactly once, stage spans balance, and
    /// the stream is reproducible byte-for-byte.
    #[test]
    fn trace_well_formed_on_random_workloads(
        seed in any::<u64>(),
        fault_rate in 0.0f64..0.05,
        n in 8usize..64,
        workers in 1usize..4,
    ) {
        use aaod_algos::ids;
        use aaod_core::{Engine, EngineConfig, FaultConfig, TraceConfig};
        use aaod_sim::trace::EventKind;
        use aaod_sim::{FaultPlan, FaultRates, SimTime};
        use std::collections::BTreeMap;
        let algos = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];
        let w = aaod_workload::Workload::zipf(&algos, n, 1.1, 32, seed);
        let cfg = EngineConfig {
            workers,
            verify: true,
            faults: Some(FaultConfig::new(FaultPlan::new(
                seed,
                FaultRates::uniform(fault_rate),
            ))),
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        };
        let r = Engine::new(cfg).serve(&w).unwrap();
        let t = r.trace.as_ref().unwrap();
        let mut last: BTreeMap<u32, SimTime> = BTreeMap::new();
        let mut open_jobs: BTreeMap<(u32, u64), SimTime> = BTreeMap::new();
        let mut open_stages = 0i64;
        let mut closed = 0u64;
        for e in &t.events {
            let prev = last.entry(e.shard).or_insert(SimTime::ZERO);
            prop_assert!(e.ts >= *prev, "shard {} reversed at seq {}", e.shard, e.seq);
            *prev = e.ts;
            match e.kind {
                EventKind::JobOpen { job, .. } => {
                    prop_assert!(
                        open_jobs.insert((e.shard, job), e.ts).is_none(),
                        "job {} opened twice", job
                    );
                }
                EventKind::JobClose { job, .. } => {
                    let at = open_jobs.remove(&(e.shard, job));
                    prop_assert!(at.is_some(), "job {} closed unopened", job);
                    prop_assert!(at.unwrap() <= e.ts);
                    closed += 1;
                }
                EventKind::StageOpen { .. } => open_stages += 1,
                EventKind::StageClose { .. } => open_stages -= 1,
                _ => {}
            }
        }
        prop_assert!(open_jobs.is_empty(), "unclosed jobs: {:?}", open_jobs);
        prop_assert_eq!(open_stages, 0, "unbalanced stage spans");
        prop_assert_eq!(closed, n as u64, "every job must close");
        let again = Engine::new(cfg).serve(&w).unwrap();
        prop_assert_eq!(
            again.trace.as_ref().unwrap().to_jsonl(),
            t.to_jsonl(),
            "trace not reproducible"
        );
    }

    /// For any seeded chaos + overload mix, the trace-derived counters
    /// are *identical* to the component ledgers — the observability
    /// layer is a second, independent bookkeeper that must always
    /// agree with the first.
    #[test]
    fn trace_counters_identical_to_ledgers(
        seed in any::<u64>(),
        fault_rate in 0.0f64..0.04,
        latency_rate in 0.0f64..0.05,
        interarrival_ns in 1u64..200_000,
        workers in 1usize..4,
    ) {
        use aaod_algos::ids;
        use aaod_core::{
            DeadlinePolicy, Engine, EngineConfig, FaultConfig, OverloadConfig, TraceConfig,
        };
        use aaod_sim::{FaultPlan, FaultRates, LatencyRates, SimTime};
        let algos = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];
        let w = aaod_workload::Workload::zipf(&algos, 48, 1.1, 32, seed);
        let plan = FaultPlan::new(seed, FaultRates::uniform(fault_rate))
            .with_latency(LatencyRates::uniform(latency_rate));
        let r = Engine::new(EngineConfig {
            workers,
            verify: true,
            overload: Some(OverloadConfig {
                interarrival: SimTime::from_ns(interarrival_ns),
                deadline: DeadlinePolicy::Absolute(SimTime::from_secs(1)),
                ..OverloadConfig::default()
            }),
            faults: Some(FaultConfig::new(plan)),
            trace: TraceConfig::counters(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        prop_assert!(r.overload.accounted());
        let c = &r.trace.as_ref().unwrap().metrics.counters;
        prop_assert_eq!(c.enqueued, 48);
        prop_assert_eq!(c.dequeued, 48);
        prop_assert_eq!(c.shed, r.overload.shed);
        prop_assert_eq!(c.bounced, r.overload.breaker_rejections);
        prop_assert_eq!(c.redistributed, r.overload.redistributed);
        prop_assert_eq!(c.watchdog_resets, r.overload.watchdog_resets);
        prop_assert_eq!(c.breaker_trips, r.overload.breaker_trips);
        prop_assert_eq!(c.jobs_deadline_missed, r.overload.deadline_missed);
        prop_assert_eq!(
            c.faults_injected,
            r.faults.injected
                + r.overload.stalls_injected
                + r.overload.slow_transfers_injected
                + r.overload.stuck_injected
        );
        prop_assert_eq!(c.faults_inert, r.faults.inert + r.overload.latency_inert);
        prop_assert_eq!(c.retries, r.faults.retries);
        prop_assert_eq!(c.requeued, r.faults.requeues);
        prop_assert_eq!(c.faults_failed, r.faults.faults_failed);
        prop_assert_eq!(c.repairs_scrub, r.faults.scrubbed);
        prop_assert_eq!(c.repairs_redownload, r.faults.redownloads);
        prop_assert_eq!(c.repairs_pci_retry, r.faults.pci_retried);
        prop_assert_eq!(c.repairs_evict_clear, r.faults.evict_cleared);
    }
}

// Realistic-traffic and multi-tenant admission properties (E19). The
// base seed folds in `AAOD_KERNEL_SEED` so the CI kernel matrix
// sweeps this suite with the same knob as the conformance tier.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Diurnal streams are a pure function of their arguments: the
    /// request stream and the arrival-tick curve reproduce exactly,
    /// ticks are monotone, and the mean gap stays pinned to one
    /// interarrival (1000 milliticks) regardless of the ratio.
    #[test]
    fn diurnal_reproduces_and_keeps_mean_gap(
        seed in any::<u64>(),
        n in 16usize..200,
        periods in 1u32..5,
        ratio in 2u32..30,
    ) {
        use aaod_workload::Workload;
        let seed = seed ^ aaod_bench::env_seed("AAOD_KERNEL_SEED", 0);
        let a = Workload::diurnal(&[3, 5, 8], n, periods, ratio, 32, seed);
        let b = Workload::diurnal(&[3, 5, 8], n, periods, ratio, 32, seed);
        prop_assert_eq!(a.requests(), b.requests());
        let ticks: Vec<u64> = (0..n).map(|i| a.arrival_tick(i).unwrap()).collect();
        prop_assert_eq!(
            ticks.clone(),
            (0..n).map(|i| b.arrival_tick(i).unwrap()).collect::<Vec<_>>()
        );
        prop_assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "ticks reversed");
        if n >= 32 {
            let mean_gap = ticks[n - 1] / (n as u64 - 1);
            prop_assert!(
                (700..=1300).contains(&mean_gap),
                "mean gap {mean_gap} drifted from one interarrival"
            );
        }
    }

    /// Flash-crowd streams reproduce exactly, and the middle-third
    /// spike really compresses arrivals: the spike's mean gap is the
    /// baseline's divided by the multiplier.
    #[test]
    fn flash_crowd_reproduces_and_spike_compresses(
        seed in any::<u64>(),
        n in 30usize..200,
        mult in 2u32..50,
    ) {
        use aaod_workload::Workload;
        let seed = seed ^ aaod_bench::env_seed("AAOD_KERNEL_SEED", 0);
        let hot = 3u16;
        let a = Workload::flash_crowd(&[3, 5, 8], hot, n, mult, 32, seed);
        let b = Workload::flash_crowd(&[3, 5, 8], hot, n, mult, 32, seed);
        prop_assert_eq!(a.requests(), b.requests());
        let ticks: Vec<u64> = (0..n).map(|i| a.arrival_tick(i).unwrap()).collect();
        prop_assert_eq!(
            ticks.clone(),
            (0..n).map(|i| b.arrival_tick(i).unwrap()).collect::<Vec<_>>()
        );
        prop_assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
        // gaps: baseline 1000 milliticks, spike max(1000/mult, 1)
        let spike = n / 3..2 * n / 3;
        for i in 1..n {
            let gap = ticks[i] - ticks[i - 1];
            if spike.contains(&(i - 1)) {
                prop_assert_eq!(gap, (1000 / mult as u64).max(1), "spike gap at {}", i);
            } else {
                prop_assert_eq!(gap, 1000, "baseline gap at {}", i);
            }
        }
        // the hot algorithm dominates the spike window
        let hot_in_spike = spike.clone().filter(|&i| a.requests()[i].algo_id == hot).count();
        prop_assert!(hot_in_spike * 2 >= spike.len(), "spike never got hot");
    }
}

// Weighted-fair engine runs are costly; small case budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Under any tenant weights, quotas, slack and deadline tightness,
    /// the weighted-fair admission layer conserves jobs globally
    /// (`shed + deadline_missed + completed + faulted +
    /// quota_exceeded == submitted`), conserves them per tenant, the
    /// per-tenant ledgers sum to the global one, and the quota ledger
    /// equals the arithmetic excess of each tenant's offered load.
    #[test]
    fn weighted_fair_conserves_globally_and_per_tenant(
        seed in any::<u64>(),
        w_gw in 1u32..8,
        w_flood in 1u32..8,
        flood_quota in 20u64..200,
        slack_pct in 0u32..200,
        interarrival_ns in 100u64..50_000,
        budget_us in 10u64..10_000,
    ) {
        use aaod_core::{
            DeadlinePolicy, Engine, EngineConfig, FairnessConfig, OverloadConfig, ShardPolicy,
        };
        use aaod_sim::SimTime;
        use aaod_workload::{TenantSpec, Workload};
        let seed = seed ^ aaod_bench::env_seed("AAOD_KERNEL_SEED", 0);
        let spec = |name: &str, algo: u16, weight: u32, offered: u32, quota: Option<u64>| {
            TenantSpec {
                name: name.into(),
                algos: vec![algo],
                weight,
                offered,
                input_len: 64,
                quota,
            }
        };
        let n = 120usize;
        let w = Workload::multi_tenant(
            &[
                spec("gw", 3, w_gw, 1, None),
                spec("flood", 5, w_flood, 6, Some(flood_quota)),
            ],
            n,
            seed,
        );
        let r = Engine::new(EngineConfig {
            workers: 2,
            shard: ShardPolicy::RoundRobin,
            overload: Some(OverloadConfig {
                interarrival: SimTime::from_ns(interarrival_ns),
                deadline: DeadlinePolicy::Absolute(SimTime::from_us(budget_us)),
                fairness: Some(FairnessConfig {
                    slack_pct,
                    ..FairnessConfig::default()
                }),
                ..OverloadConfig::default()
            }),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        prop_assert!(r.overload.accounted(), "global leak: {:?}", r.overload);
        prop_assert_eq!(r.overload.submitted, n as u64);
        prop_assert!(r.overload.fair_shed <= r.overload.shed);
        prop_assert_eq!(r.tenants.len(), 2);
        for t in &r.tenants {
            prop_assert!(t.accounted(), "tenant leak: {:?}", t);
        }
        let sum = |f: fn(&aaod_core::TenantStats) -> u64| -> u64 {
            r.tenants.iter().map(f).sum()
        };
        prop_assert_eq!(sum(|t| t.submitted), r.overload.submitted);
        prop_assert_eq!(sum(|t| t.completed), r.overload.completed);
        prop_assert_eq!(sum(|t| t.shed), r.overload.shed);
        prop_assert_eq!(sum(|t| t.deadline_missed), r.overload.deadline_missed);
        prop_assert_eq!(sum(|t| t.faulted), r.overload.faulted);
        prop_assert_eq!(sum(|t| t.quota_exceeded), r.overload.quota_exceeded);
        // the quota ledger is exactly the arithmetic excess
        let flood_offered = (0..n).filter(|&i| w.tenant_of(i) == Some(1)).count() as u64;
        prop_assert_eq!(
            r.overload.quota_exceeded,
            flood_offered.saturating_sub(flood_quota),
            "quota ledger must equal offered − quota"
        );
        prop_assert_eq!(r.quota_exceeded.len() as u64, r.overload.quota_exceeded);
    }
}

//! Cross-crate integration tests: the whole card, end to end.

use aaod_algos::{ids, AlgorithmBank};
use aaod_bitstream::codec::CodecId;
use aaod_core::baselines::SoftwareExecutor;
use aaod_core::{run_workload, CoProcessor, ReconfigMode};
use aaod_fabric::DeviceGeometry;
use aaod_mcu::replacement::policy_by_name;
use aaod_mcu::{BeladyPolicy, LruPolicy};
use aaod_workload::{mixes, Workload};

/// Installs every bank algorithm and checks hardware output equals the
/// golden software model for each — the fundamental correctness claim.
#[test]
fn every_algorithm_matches_software_end_to_end() {
    let mut cp = CoProcessor::default();
    let bank = AlgorithmBank::standard();
    for id in ids::ALL {
        cp.install(id).unwrap();
    }
    for id in ids::ALL {
        let len = mixes::default_input_len(id);
        let input: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        let (hw, report) = cp.invoke(id, &input).unwrap();
        let sw = bank.execute_software(id, &input).unwrap();
        assert_eq!(hw, sw, "algo {id} diverged");
        assert!(report.total().as_ns() > 0.0);
    }
}

/// Constant eviction pressure must never corrupt results.
#[test]
fn eviction_storm_preserves_correctness() {
    // 26 frames: only one big function fits at a time alongside a
    // couple of small ones.
    let mut cp = CoProcessor::builder()
        .geometry(DeviceGeometry::new(26, 16))
        .build();
    let algos = [ids::XTEA, ids::SHA1, ids::SHA256, ids::CRC32, ids::CRC8];
    for &id in &algos {
        cp.install(id).unwrap();
    }
    let w = Workload::round_robin(&algos, 60, 128);
    let r = run_workload(&mut cp, &w, true).unwrap();
    assert!(
        r.evictions.unwrap() > 10,
        "expected heavy eviction, got {:?}",
        r.evictions
    );
}

/// Every codec must produce a working card.
#[test]
fn all_codecs_configure_correctly() {
    for codec in CodecId::ALL {
        let mut cp = CoProcessor::builder().codec(codec).build();
        cp.install(ids::SHA256).unwrap();
        let (out, _) = cp.invoke(ids::SHA256, b"abc").unwrap();
        assert_eq!(
            out[..4],
            [0xba, 0x78, 0x16, 0xbf],
            "codec {codec} broke configuration"
        );
    }
}

/// The decompression window size must not affect results, only timing.
#[test]
fn window_size_is_result_invariant() {
    let mut reference: Option<Vec<u8>> = None;
    for window in [16usize, 128, 896, 8192] {
        let mut cp = CoProcessor::builder().window(window).build();
        cp.install(ids::AES128).unwrap();
        let (out, _) = cp.invoke(ids::AES128, &[7u8; 64]).unwrap();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "window {window} changed the result"),
        }
    }
}

/// Partial and full reconfiguration must compute identical results;
/// partial must be faster under swapping.
#[test]
fn full_and_partial_agree_on_outputs() {
    let algos = [ids::CRC32, ids::XTEA];
    let mut partial = CoProcessor::default();
    let mut full = CoProcessor::builder().mode(ReconfigMode::Full).build();
    for &id in &algos {
        partial.install(id).unwrap();
        full.install(id).unwrap();
    }
    let w = Workload::round_robin(&algos, 20, 64);
    let rp = run_workload(&mut partial, &w, true).unwrap();
    let rf = run_workload(&mut full, &w, true).unwrap();
    assert!(
        rf.total_time > rp.total_time,
        "full {} should exceed partial {}",
        rf.total_time,
        rp.total_time
    );
}

/// Belady's oracle must not lose to LRU on hit rate (allow equality).
#[test]
fn belady_upper_bounds_lru_hit_rate() {
    let algos = mixes::full_bank();
    let w = Workload::zipf(&algos, 250, 1.1, 64, 77);
    let hit_rate = |policy: Box<dyn aaod_mcu::ReplacementPolicy>| {
        let mut cp = CoProcessor::builder()
            .geometry(DeviceGeometry::new(48, 16))
            .policy(policy)
            .build();
        for &id in &algos {
            cp.install(id).unwrap();
        }
        run_workload(&mut cp, &w, false)
            .unwrap()
            .hit_rate()
            .unwrap()
    };
    let lru = hit_rate(Box::new(LruPolicy));
    let belady = hit_rate(Box::new(BeladyPolicy::new(w.algo_trace())));
    assert!(
        belady >= lru - 1e-9,
        "belady {belady} must not lose to lru {lru}"
    );
}

/// Random policy should not decisively beat LRU on a skewed workload
/// (sanity on the policy machinery, with generous margin).
#[test]
fn lru_competitive_with_random_on_skewed_workloads() {
    let algos = mixes::full_bank();
    let w = Workload::zipf(&algos, 300, 1.4, 64, 123);
    let run_with = |name: &str| {
        let mut cp = CoProcessor::builder()
            .geometry(DeviceGeometry::new(40, 16))
            .policy(policy_by_name(name, 5))
            .build();
        for &id in &algos {
            cp.install(id).unwrap();
        }
        run_workload(&mut cp, &w, false)
            .unwrap()
            .hit_rate()
            .unwrap()
    };
    let lru = run_with("lru");
    let random = run_with("random");
    assert!(
        lru + 0.02 >= random,
        "lru {lru} unexpectedly lost to random {random} by a wide margin"
    );
}

/// The ROM rejects overflow and the card keeps working afterwards.
#[test]
fn rom_exhaustion_is_clean() {
    let mut cp = CoProcessor::builder()
        .rom_capacity(24 * 1024)
        .codec(CodecId::Null)
        .build();
    let mut installed = Vec::new();
    for id in ids::ALL {
        match cp.install(id) {
            Ok(_) => installed.push(id),
            Err(_) => break,
        }
    }
    assert!(
        !installed.is_empty() && installed.len() < ids::ALL.len(),
        "tiny rom should hold some but not all functions ({installed:?})"
    );
    // everything installed still runs
    let id = installed[0];
    let input = vec![0u8; mixes::default_input_len(id)];
    cp.invoke(id, &input).unwrap();
}

/// Host-side accounting: PCI totals reflect both bitstreams and data.
#[test]
fn pci_accounting_is_complete() {
    let mut cp = CoProcessor::default();
    cp.install(ids::CRC32).unwrap();
    let installed_bytes = cp.pci_stats().bytes_written;
    assert!(installed_bytes > 0, "bitstream download not counted");
    cp.invoke(ids::CRC32, &[1u8; 500]).unwrap();
    let s = cp.pci_stats();
    assert_eq!(s.bytes_written, installed_bytes + 500);
    assert_eq!(s.bytes_read, 4);
}

/// The agile card beats software on a cipher-heavy stream (the paper's
/// headline) and software beats it on a trivial-kernel stream (the
/// honest crossover).
#[test]
fn agility_payoff_shape() {
    let heavy = Workload::bursty(&[ids::AES128, ids::XTEA], 300, 15, 1504, 9);
    let trivial = Workload::bursty(&[ids::CRC32, ids::PARITY8], 300, 15, 256, 9);
    for (workload, coproc_should_win) in [(heavy, true), (trivial, false)] {
        let mut cp = CoProcessor::default();
        for id in workload.distinct_algos() {
            cp.install(id).unwrap();
        }
        let mut sw = SoftwareExecutor::new();
        let rc = run_workload(&mut cp, &workload, true).unwrap();
        let rs = run_workload(&mut sw, &workload, true).unwrap();
        if coproc_should_win {
            assert!(
                rc.total_time < rs.total_time,
                "co-processor should win heavy: {} vs {}",
                rc.total_time,
                rs.total_time
            );
        } else {
            assert!(
                rs.total_time < rc.total_time,
                "software should win trivial: {} vs {}",
                rs.total_time,
                rc.total_time
            );
        }
    }
}

/// Prefetching under an over-committed predictable rotation: results
/// stay correct and the hit rate improves dramatically.
#[test]
fn prefetch_correct_and_effective_under_pressure() {
    let big_three = [ids::AES128, ids::TDES, ids::SHA256]; // 58 > 52 frames
    let w = Workload::round_robin(&big_three, 90, 512);
    let run = |prefetch: bool| {
        let mut cp = CoProcessor::builder()
            .geometry(DeviceGeometry::new(52, 16))
            .prefetch(prefetch)
            .build();
        for &id in &big_three {
            cp.install(id).unwrap();
        }
        run_workload(&mut cp, &w, true).unwrap() // verified outputs
    };
    let off = run(false);
    let on = run(true);
    assert!(
        off.hit_rate().unwrap() < 0.1,
        "rotation should thrash reactively"
    );
    assert!(
        on.hit_rate().unwrap() > 0.8,
        "prefetch should rescue the rotation: {:?}",
        on.hit_rate()
    );
    assert!(on.total_time < off.total_time / 5);
}

/// Scrubbing keeps a workload correct while SEUs rain on the device.
#[test]
fn scrubbed_workload_survives_seu_rain() {
    use aaod_sim::SplitMix64;
    let algos = [ids::SHA1, ids::CRC32];
    let mut cp = CoProcessor::default();
    for &id in &algos {
        cp.install(id).unwrap();
    }
    let mut rng = SplitMix64::new(0xbad);
    let bank = AlgorithmBank::standard();
    for i in 0..120usize {
        let id = algos[i % 2];
        let input = vec![(i % 251) as u8; 64];
        match cp.invoke(id, &input) {
            Ok((out, _)) => {
                assert_eq!(
                    out,
                    bank.execute_software(id, &input).unwrap(),
                    "silent corruption at request {i}"
                );
            }
            Err(_) => {
                // detected corruption: scrub repairs it
                let repaired = cp.scrub().unwrap().repaired;
                assert!(
                    !repaired.is_empty(),
                    "invoke failed but scrub found nothing"
                );
            }
        }
        // one SEU every few requests, anywhere on the device
        if i % 5 == 4 {
            let geom = cp.geometry();
            let frame = aaod_fabric::FrameAddress(rng.index(geom.frames()) as u16);
            let offset = rng.index(geom.frame_bytes());
            let mut bytes = cp.os().device().read_frame(frame).unwrap().to_vec();
            bytes[offset] ^= 1 << rng.index(8);
            cp.os_mut().device_mut().write_frame(frame, &bytes).unwrap();
        }
        // periodic scrub
        if i % 10 == 9 {
            cp.scrub().unwrap();
        }
    }
}

/// The wire-level command interface drives a full session.
#[test]
fn command_session_end_to_end() {
    use aaod_mcu::{Command, Response};
    let mut cp = CoProcessor::default();
    let bitstream = cp.os().encode_bitstream(ids::SHA1).unwrap();
    // encode → decode across the "wire" before dispatch, as the real
    // driver would
    let wire = Command::Download { bitstream }.encode();
    let cmd = Command::decode(&wire).unwrap();
    let (resp, _) = cp.send_command(cmd).unwrap();
    assert_eq!(resp, Response::Done);
    let wire = Command::Invoke {
        algo_id: ids::SHA1,
        input: b"abc".to_vec(),
    }
    .encode();
    let (resp, t) = cp.send_command(Command::decode(&wire).unwrap()).unwrap();
    match resp {
        Response::Output(digest) => {
            assert_eq!(digest[..4], [0xa9, 0x99, 0x3e, 0x36]);
        }
        other => panic!("unexpected response {other:?}"),
    }
    assert!(t.as_us() > 0.0);
}

/// Configuration-matrix smoke: every (geometry, codec, window, mode)
/// combination yields a working, correct card.
#[test]
fn configuration_matrix_smoke() {
    for geometry in [DeviceGeometry::new(48, 8), DeviceGeometry::new(96, 16)] {
        for codec in [CodecId::Rle, CodecId::Lzss, CodecId::FrameXor] {
            for window in [32usize, 896] {
                for mode in [ReconfigMode::Partial, ReconfigMode::Full] {
                    let mut cp = CoProcessor::builder()
                        .geometry(geometry)
                        .codec(codec)
                        .window(window)
                        .mode(mode)
                        .build();
                    cp.install(ids::CRC32).unwrap();
                    let (out, _) = cp.invoke(ids::CRC32, b"123456789").unwrap();
                    assert_eq!(
                        out,
                        0xCBF4_3926u32.to_le_bytes().to_vec(),
                        "broken combination: {geometry} {codec} w={window} {mode:?}"
                    );
                }
            }
        }
    }
}

/// Statistics and residency stay consistent across a long mixed run.
#[test]
fn long_run_bookkeeping_invariants() {
    let algos = mixes::full_bank();
    let mut cp = CoProcessor::builder()
        .geometry(DeviceGeometry::new(64, 16))
        .build();
    for &id in &algos {
        cp.install(id).unwrap();
    }
    let w = Workload::uniform(&algos, 200, 96, 31);
    run_workload(&mut cp, &w, false).unwrap();
    let s = cp.stats();
    assert_eq!(s.requests, 200);
    assert_eq!(s.hits + s.misses, 200);
    // resident functions' frames fit the device and don't overlap
    let geom = cp.geometry();
    let mut seen = vec![false; geom.frames()];
    for id in cp.resident() {
        let residency = cp.os().table().get(id).unwrap();
        for f in &residency.frames {
            assert!(!seen[f.index()], "frame {f} owned twice");
            seen[f.index()] = true;
        }
    }
    let owned = seen.iter().filter(|&&b| b).count();
    assert_eq!(owned + cp.os().free_frames(), geom.frames());
}

/// A batch whose function was evicted by intervening traffic straddles
/// the eviction: the first request pays one reconfiguration (evicting
/// the squatter), the riders hit, and every output stays golden.
#[test]
fn batch_straddles_eviction() {
    // Measure both footprints on a roomy device, then build one that
    // holds either function alone but never both.
    let mut probe = CoProcessor::builder()
        .geometry(DeviceGeometry::new(64, 16))
        .build();
    probe.install(ids::SHA1).unwrap();
    probe.install(ids::SHA256).unwrap();
    probe.invoke(ids::SHA1, b"x").unwrap();
    probe.invoke(ids::SHA256, b"x").unwrap();
    let footprint = |cp: &CoProcessor, id| cp.os().table().get(id).unwrap().frames.len() as u16;
    let frames = footprint(&probe, ids::SHA1).max(footprint(&probe, ids::SHA256)) + 1;

    let mut cp = CoProcessor::builder()
        .geometry(DeviceGeometry::new(frames, 16))
        .build();
    cp.install(ids::SHA1).unwrap();
    cp.install(ids::SHA256).unwrap();
    cp.invoke(ids::SHA1, b"warm").unwrap();
    cp.invoke(ids::SHA256, b"squatter").unwrap(); // evicts SHA1
    assert_eq!(cp.resident(), vec![ids::SHA256]);

    let before = cp.stats();
    let inputs: Vec<&[u8]> = vec![b"one", b"two", b"three"];
    let served = cp.invoke_batch(ids::SHA1, &inputs).unwrap();
    let after = cp.stats();
    assert_eq!(served.len(), 3);
    assert_eq!(after.requests - before.requests, 3);
    assert_eq!(after.misses - before.misses, 1, "one reconfiguration");
    assert_eq!(after.hits - before.hits, 2, "riders hit by construction");
    assert_eq!(after.evictions - before.evictions, 1, "squatter evicted");
    assert!(!served[0].1.hit() && !served[0].1.os.evicted.is_empty());
    assert!(served[1].1.hit() && served[2].1.hit());
    let bank = AlgorithmBank::standard();
    for ((out, _), &input) in served.iter().zip(&inputs) {
        assert_eq!(*out, bank.execute_software(ids::SHA1, input).unwrap());
    }
}

/// An empty batch is a no-op: no results, no bus traffic, no charge.
#[test]
fn empty_batch_is_free() {
    let mut cp = CoProcessor::default();
    cp.install(ids::CRC8).unwrap();
    cp.invoke(ids::CRC8, b"warm").unwrap();
    let os_before = cp.stats();
    let pci_before = cp.pci_stats();
    let served = cp.invoke_batch(ids::CRC8, &[]).unwrap();
    assert!(served.is_empty());
    assert_eq!(cp.stats(), os_before, "no controller work charged");
    assert_eq!(cp.pci_stats(), pci_before, "no bus traffic");
}

/// Batching charges the shared costs once: same outputs as the serial
/// run, but one lookup and one residency check for the whole batch.
#[test]
fn batch_charges_shared_costs_once() {
    let inputs: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma", b"delta"];

    let mut serial = CoProcessor::default();
    serial.install(ids::CRC32).unwrap();
    let mut expected = Vec::new();
    for &input in &inputs {
        expected.push(serial.invoke(ids::CRC32, input).unwrap().0);
    }

    let mut batched = CoProcessor::default();
    batched.install(ids::CRC32).unwrap();
    let served = batched.invoke_batch(ids::CRC32, &inputs).unwrap();
    let outputs: Vec<_> = served.iter().map(|(out, _)| out.clone()).collect();
    assert_eq!(outputs, expected, "batching must not change results");

    let s = batched.stats();
    assert_eq!(s.requests, 4);
    assert_eq!(s.misses, 1, "one configuration for the whole batch");
    assert_eq!(s.hits, 3);
    assert!(
        s.lookup_time < serial.stats().lookup_time,
        "lookup paid once, not {} times",
        inputs.len()
    );
    // only the first report carries the shared costs
    assert!(served[0].1.os.lookup_time > aaod_sim::SimTime::ZERO);
    for (_, report) in &served[1..] {
        assert_eq!(report.os.lookup_time, aaod_sim::SimTime::ZERO);
        assert_eq!(report.os.reconfig_time, aaod_sim::SimTime::ZERO);
    }
}

//! Golden-trace tests: the observability layer's JSONL export is a
//! *contract*. For a fixed (workload, seed, config) the engine must
//! emit a byte-identical event stream on every run, on every machine —
//! that is what makes traces diffable across commits and what lets CI
//! catch an accidental behaviour change as a one-line diff.
//!
//! The goldens live in `tests/golden/*.jsonl`. When a change
//! *intentionally* alters the trace (a new event, a timing-model fix),
//! regenerate them with:
//!
//! ```text
//! AAOD_BLESS=1 cargo test --test trace_golden
//! ```
//!
//! and commit the rewritten files. The failure message prints the
//! first differing line so an unintentional drift is obvious.

use aaod_algos::ids;
use aaod_core::{Engine, EngineConfig, ShardPolicy, TraceConfig};
use aaod_workload::Workload;
use std::path::PathBuf;

/// `tests/golden/` at the repository root (the test is compiled from
/// `crates/bench`, two levels down).
fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// The quickstart working set: fits the default 96-frame device, so
/// the trace exercises hits, misses and batching but no evictions.
const MIX: [u16; 4] = [ids::SHA1, ids::CRC32, ids::CRC8, ids::XTEA];

/// Workload seed for the determinism tests: `AAOD_TRACE_SEED` if set
/// (the CI trace matrix sweeps it), else fixed. The golden files use
/// pinned seeds regardless — their bytes are part of the repo.
fn sweep_seed() -> u64 {
    aaod_bench::env_seed("AAOD_TRACE_SEED", 7)
}

/// One deterministic traced serve of the quickstart-style mix.
fn traced_jsonl(seed: u64, workers: usize) -> String {
    let w = Workload::zipf(&MIX, 24, 1.1, 32, seed);
    let r = Engine::new(EngineConfig {
        workers,
        verify: true,
        shard: ShardPolicy::AlgoModulo,
        trace: TraceConfig::full(),
        ..EngineConfig::default()
    })
    .serve(&w)
    .expect("traced serve");
    r.trace.expect("trace requested").to_jsonl()
}

/// Compares `got` against the golden file, or rewrites it under
/// `AAOD_BLESS=1`. On mismatch, reports the first differing line.
fn check_golden(name: &str, got: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("AAOD_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with \
             `AAOD_BLESS=1 cargo test --test trace_golden`",
            path.display()
        )
    });
    if got == want {
        return;
    }
    let (line_no, got_line, want_line) = got
        .lines()
        .zip(want.lines())
        .enumerate()
        .find(|(_, (g, w))| g != w)
        .map(|(i, (g, w))| (i + 1, g.to_string(), w.to_string()))
        .unwrap_or_else(|| {
            (
                got.lines().count().min(want.lines().count()) + 1,
                format!("<{} lines>", got.lines().count()),
                format!("<{} lines>", want.lines().count()),
            )
        });
    panic!(
        "trace drifted from golden {} at line {line_no}:\n  got:  {got_line}\n  want: {want_line}\n\
         If the change is intentional, re-bless with \
         `AAOD_BLESS=1 cargo test --test trace_golden` and commit the diff.",
        path.display()
    );
}

#[test]
fn quickstart_mix_seed_1_matches_golden() {
    check_golden("quickstart_seed1.jsonl", &traced_jsonl(1, 2));
}

#[test]
fn quickstart_mix_seed_42_matches_golden() {
    check_golden("quickstart_seed42.jsonl", &traced_jsonl(42, 2));
}

/// Same (workload, seed, config) must serialize identically run after
/// run, at every pool width — the determinism half of the golden
/// contract, independent of the checked-in files.
#[test]
fn repeated_runs_are_byte_identical_at_every_width() {
    for workers in [1, 2, 4] {
        let a = traced_jsonl(sweep_seed(), workers);
        let b = traced_jsonl(sweep_seed(), workers);
        assert!(!a.is_empty());
        assert_eq!(a, b, "{workers}-worker trace not reproducible");
    }
}

/// Job-level counters are a pure function of the workload: they must
/// not change with the shard count (per-shard detail counters like
/// decoded-cache misses legitimately do, since each shard brings up
/// its own card).
#[test]
fn job_counters_are_invariant_across_pool_widths() {
    let w = Workload::zipf(&MIX, 48, 1.1, 32, sweep_seed());
    let counters = |workers: usize| {
        let r = Engine::new(EngineConfig {
            workers,
            trace: TraceConfig::counters(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap();
        r.trace.unwrap().metrics.counters
    };
    let one = counters(1);
    for workers in [2, 4] {
        let c = counters(workers);
        assert_eq!(c.enqueued, one.enqueued);
        assert_eq!(c.dequeued, one.dequeued);
        assert_eq!(c.jobs_opened, one.jobs_opened);
        assert_eq!(c.jobs_completed, one.jobs_completed);
        assert_eq!(c.jobs_hit, one.jobs_hit, "residency is width-invariant");
    }
    assert_eq!(one.enqueued, 48);
    assert_eq!(one.jobs_completed, 48);
}

/// Parses `"key":value` for a numeric field out of a canonical JSONL
/// line (the format is fixed-order, zero-dependency by design).
fn field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// The exported JSONL must itself be well-formed: per-shard
/// timestamps monotone, `seq` dense per shard, and open/close events
/// balanced — checked on the serialized form, which is what a
/// downstream consumer actually parses.
#[test]
fn exported_jsonl_is_well_formed() {
    use std::collections::BTreeMap;
    let jsonl = traced_jsonl(42, 2);
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut next_seq: BTreeMap<u64, u64> = BTreeMap::new();
    let mut open_jobs: BTreeMap<(u64, u64), ()> = BTreeMap::new();
    let mut opens = 0u64;
    let mut closes = 0u64;
    for line in jsonl.lines() {
        let shard = field(line, "shard").expect("shard field");
        let seq = field(line, "seq").expect("seq field");
        let ts = field(line, "ts_ps").expect("ts_ps field");
        let expected = next_seq.entry(shard).or_insert(0);
        assert_eq!(seq, *expected, "shard {shard} seq not dense: {line}");
        *expected += 1;
        let prev = last_ts.entry(shard).or_insert(0);
        assert!(ts >= *prev, "shard {shard} time reversed: {line}");
        *prev = ts;
        match str_field(line, "event") {
            Some("job_open") => {
                let job = field(line, "job").unwrap();
                assert!(open_jobs.insert((shard, job), ()).is_none());
                opens += 1;
            }
            Some("job_close") => {
                let job = field(line, "job").unwrap();
                assert!(open_jobs.remove(&(shard, job)).is_some());
                closes += 1;
            }
            Some(_) => {}
            None => panic!("line without event: {line}"),
        }
    }
    assert!(open_jobs.is_empty(), "unclosed jobs in export");
    assert_eq!(opens, 24, "one open per request");
    assert_eq!(opens, closes);
}

/// The Chrome `trace_event` export wraps the same stream and is a
/// single JSON document with balanced B/E duration events.
#[test]
fn chrome_export_is_deterministic_and_balanced() {
    let w = Workload::zipf(&MIX, 24, 1.1, 32, 1);
    let run = || {
        Engine::new(EngineConfig {
            workers: 2,
            trace: TraceConfig::full(),
            ..EngineConfig::default()
        })
        .serve(&w)
        .unwrap()
        .trace
        .unwrap()
        .to_chrome_trace()
    };
    let a = run();
    assert_eq!(a, run());
    assert!(a.starts_with("{\"traceEvents\":["));
    assert!(a.ends_with("]}") || a.ends_with("\"}"));
    let begins = a.matches("\"ph\":\"B\"").count();
    let ends = a.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends, "unbalanced duration events");
    assert!(begins > 0, "stage spans must appear as durations");
}

/// One deterministic traced serve of a flash-crowd stream through the
/// overload layer: the SHA1 spike compresses the tick-shaped arrival
/// curve 20×, so the golden pins sheds and deadline misses — the
/// realistic-traffic arrival replay is part of the trace contract.
fn flash_crowd_jsonl(seed: u64) -> String {
    use aaod_core::{DeadlinePolicy, OverloadConfig};
    use aaod_sim::SimTime;
    let w = Workload::flash_crowd(&MIX, ids::SHA1, 48, 20, 32, seed);
    let r = Engine::new(EngineConfig {
        workers: 2,
        verify: true,
        shard: ShardPolicy::AlgoModulo,
        overload: Some(OverloadConfig {
            interarrival: SimTime::from_us(2),
            deadline: DeadlinePolicy::Absolute(SimTime::from_us(40)),
            ..OverloadConfig::default()
        }),
        trace: TraceConfig::full(),
        ..EngineConfig::default()
    })
    .serve(&w)
    .expect("traced flash-crowd serve");
    r.trace.expect("trace requested").to_jsonl()
}

#[test]
fn flash_crowd_seed_5_matches_golden() {
    check_golden("flash_crowd_seed5.jsonl", &flash_crowd_jsonl(5));
}

/// The spike must actually register in the golden scenario — if the
/// overload layer ever stopped replaying `arrival_tick`, the stream
/// would serve cleanly and the golden would silently degenerate.
#[test]
fn flash_crowd_golden_scenario_is_under_pressure() {
    let jsonl = flash_crowd_jsonl(5);
    let sheds = jsonl
        .lines()
        .filter(|l| str_field(l, "event") == Some("shed"))
        .count();
    assert!(sheds > 0, "flash-crowd golden lost its overload pressure");
}

/// The online predictive router's hysteresis flip sequence for a
/// pinned flash-crowd stream, one JSON line per flip in submission
/// order. The hot id rides the tail Zipf rank so the golden pins a
/// full replicate → de-replicate cycle; a drift here means the
/// popularity EWMA, the thresholds or the refractory changed
/// behaviour.
fn predict_flips_jsonl(seed: u64) -> String {
    use aaod_core::{Cluster, ClusterConfig, Flip, PredictConfig};
    use std::fmt::Write;
    let crowd = [ids::CRC32, ids::CRC8, ids::XTEA, ids::SHA1];
    let w = Workload::flash_crowd(&crowd, ids::SHA1, 400, 20, 32, seed);
    let bank = aaod_algos::AlgorithmBank::standard();
    let r = Cluster::new(ClusterConfig {
        cards: 4,
        card_workers: 2,
        predict: Some(PredictConfig::default()),
        ..ClusterConfig::default()
    })
    .serve(&w, &bank)
    .expect("predictive cluster serve");
    let mut out = String::new();
    for f in &r.flips {
        let kind = match f.kind {
            Flip::Replicate => "replicate",
            Flip::Dereplicate => "dereplicate",
        };
        writeln!(
            out,
            "{{\"at\":{},\"algo\":{},\"flip\":\"{kind}\"}}",
            f.at, f.algo
        )
        .expect("write flip line");
    }
    out
}

#[test]
fn predict_flip_sequence_matches_golden() {
    let got = predict_flips_jsonl(5);
    assert!(
        got.contains("replicate") && got.contains("dereplicate"),
        "golden scenario lost its full hysteresis cycle:\n{got}"
    );
    check_golden("predict_flips_seed5.jsonl", &got);
}
